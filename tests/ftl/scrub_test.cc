// Patrol-scrubber tests: refresh of retention-decayed blocks with zero
// data loss, the patrol-read token budget, the escalation chain on
// patrol-found uncorrectables, and live-map/OOB-rebuild agreement at a
// quiesced point after scrub relocations.
//
// The scrubber's tick self-rearms, so these tests pump the simulator with
// RunFor/RunWhile — a bare Run() would never return (see ScrubConfig).

#include "ftl/scrub.h"

#include <gtest/gtest.h>

#include <vector>

#include "check/mapping_oracle.h"
#include "flash/array.h"
#include "ftl/ftl.h"

namespace xssd::ftl {
namespace {

flash::Geometry SmallGeometry() {
  flash::Geometry g;
  g.channels = 2;
  g.dies_per_channel = 2;
  g.blocks_per_plane = 8;
  g.pages_per_block = 16;
  g.page_bytes = 4096;
  return g;
}

FtlConfig SmallFtlConfig() {
  FtlConfig config;
  config.buffer_pages = 16;
  config.flush_watermark = 4;
  config.gc_low_watermark = 4;
  return config;
}

ScrubConfig FastScrub() {
  ScrubConfig config;
  config.enabled = true;
  config.scan_interval = sim::Ms(1);
  config.pages_per_sec = 16000.0;
  config.busy_threshold = 1;
  config.refresh_margin = 0.5;
  return config;
}

uint8_t OracleByte(uint64_t lpn) {
  return static_cast<uint8_t>(lpn * 131 + 7);
}

class ScrubTest : public ::testing::Test {
 protected:
  explicit ScrubTest(flash::Reliability reliability = {})
      : array_(&sim_, SmallGeometry(), flash::Timing{}, reliability, 11),
        ftl_(&sim_, &array_, SmallFtlConfig()) {}

  /// Write every lpn once (oracle content) and flush; RunFor-pumped so it
  /// stays safe with a scrubber armed.
  void FillAll() {
    const uint64_t lpns = ftl_.lpn_count();
    for (uint64_t lpn = 0; lpn < lpns; ++lpn) {
      ftl_.WriteBuffered(lpn,
                         std::vector<uint8_t>(4096, OracleByte(lpn)),
                         [](Status status) { ASSERT_TRUE(status.ok()); });
      if (lpn % 32 == 31) sim_.RunFor(sim::Ms(5));
    }
    bool flushed = false;
    ftl_.Flush([&](Status) { flushed = true; });
    for (int spins = 0; spins < 2000 && !flushed; ++spins) {
      sim_.RunFor(sim::Ms(1));
    }
    ASSERT_TRUE(flushed);
    Drain();
  }

  /// Pump until the flash scheduler is empty (all queues and in-flight).
  void Drain() {
    for (int spins = 0; spins < 2000; ++spins) {
      if (ftl_.scheduler().inflight() == 0 &&
          ftl_.scheduler().queued(IoClass::kConventional) == 0 &&
          ftl_.scheduler().queued(IoClass::kDestage) == 0) {
        return;
      }
      sim_.RunFor(sim::Ms(1));
    }
    FAIL() << "scheduler never drained";
  }

  /// Read every lpn; returns how many came back Corruption. Any other
  /// failure, or wrong bytes on a successful read, fails the test.
  uint64_t VerifyAll() {
    uint64_t corrupt = 0;
    const uint64_t lpns = ftl_.lpn_count();
    for (uint64_t lpn = 0; lpn < lpns; ++lpn) {
      bool fired = false;
      ftl_.ReadPage(IoClass::kConventional, lpn,
                    [&, lpn](Status status, std::vector<uint8_t> data) {
                      fired = true;
                      if (status.IsCorruption()) {
                        ++corrupt;
                        return;
                      }
                      ASSERT_TRUE(status.ok()) << "lpn " << lpn;
                      EXPECT_EQ(data[0], OracleByte(lpn)) << "lpn " << lpn;
                    });
      for (int spins = 0; spins < 2000 && !fired; ++spins) {
        sim_.RunFor(sim::Ms(1));
      }
      EXPECT_TRUE(fired) << "read of lpn " << lpn << " never completed";
    }
    return corrupt;
  }

  sim::Simulator sim_;
  flash::Array array_;
  Ftl ftl_;
};

TEST_F(ScrubTest, DisabledConfigMakesStartANoOp) {
  ScrubConfig config;  // enabled = false
  PatrolScrubber scrubber(&sim_, &ftl_, &array_, config);
  scrubber.Start();
  EXPECT_FALSE(scrubber.running());
  sim_.Run();  // must return: no self-rearming tick was armed
  EXPECT_EQ(scrubber.stats().ticks, 0u);
}

// Retention decay crosses the refresh margin well before it becomes
// uncorrectable: the scrubber must refresh proactively and every byte must
// survive the whole aging window.
class ScrubRefreshTest : public ScrubTest {
 protected:
  static flash::Reliability SlowDecay() {
    flash::Reliability r;
    r.raw_bit_error_rate = 1e-6;
    // Refresh margin (0.5 x 24 bits over a 4 KiB page) crosses at ~3.7 s
    // of dwell; the retry ladder would only exhaust past ~29 s — several
    // patrol sweeps of headroom even for the open frontier blocks the
    // scrubber cannot see.
    r.ber_per_retention_sec = 1e-4;
    r.ecc_correctable_bits = 24;
    r.read_retry_levels = 2;
    r.retry_ber_factor = 0.5;
    return r;
  }
  ScrubRefreshTest() : ScrubTest(SlowDecay()) {}
};

TEST_F(ScrubRefreshTest, RefreshesDecayingBlocksWithZeroByteLoss) {
  FillAll();
  PatrolScrubber scrubber(&sim_, &ftl_, &array_, FastScrub());
  scrubber.Start();
  ASSERT_TRUE(scrubber.running());

  sim::SimTime started = sim_.Now();
  for (int round = 0; round < 8; ++round) {
    sim_.RunFor(sim::Sec(1));
  }
  double elapsed_sec =
      static_cast<double>(sim_.Now() - started) / 1e9;

  const ScrubStats& sstats = scrubber.stats();
  const FtlStats& fstats = ftl_.stats();
  EXPECT_GT(sstats.ticks, 0u);
  EXPECT_GT(sstats.refreshes, 0u);
  EXPECT_GT(fstats.refresh_erases, 0u);
  EXPECT_GT(fstats.refresh_relocations, 0u);
  EXPECT_EQ(sstats.escalations, 0u);  // nothing decayed that far
  EXPECT_EQ(fstats.pages_lost, 0u);

  // Patrol reads and refresh relocations share the token bucket; the
  // total must respect the configured rate (one block of slack for the
  // bucket cap).
  double budget = scrubber.config().pages_per_sec * elapsed_sec +
                  array_.geometry().pages_per_block;
  EXPECT_LE(static_cast<double>(sstats.patrol_reads +
                                fstats.refresh_relocations),
            budget);

  scrubber.Stop();
  EXPECT_FALSE(scrubber.running());
  Drain();
  EXPECT_EQ(VerifyAll(), 0u);  // zero byte loss, zero uncorrectables
  EXPECT_EQ(array_.stats().uncorrectable_reads, 0u);
}

TEST_F(ScrubRefreshTest, QuiescedRebuildMatchesLiveMapAfterScrubActivity) {
  FillAll();
  PatrolScrubber scrubber(&sim_, &ftl_, &array_, FastScrub());
  scrubber.Start();
  sim_.RunFor(sim::Sec(6));
  ASSERT_GT(scrubber.stats().refreshes, 0u);

  // Rebuild equality is only promised at a quiesced point: stop the
  // scrubber and drain the scheduler before scanning.
  scrubber.Stop();
  Drain();

  std::vector<check::Divergence> live = check::CheckMappingConsistent(
      ftl_.page_map(), array_.geometry());
  ASSERT_TRUE(live.empty()) << live[0].rule << " — " << live[0].detail;
  std::vector<check::Divergence> divergences =
      check::CheckRebuildMatches(ftl_, array_.geometry());
  EXPECT_TRUE(divergences.empty())
      << divergences[0].rule << " — " << divergences[0].detail;
}

// With refreshes effectively disabled, patrol reads are the first to find
// blocks that decayed past the retry ladder — each find must start the
// escalation chain: relocate what still reads, retire the block unerased,
// keep lost lpns signalling Corruption.
class ScrubEscalationTest : public ScrubTest {
 protected:
  static flash::Reliability FastDecay() {
    flash::Reliability r;
    r.raw_bit_error_rate = 1e-6;
    r.ber_per_retention_sec = 2e-3;  // uncorrectable past ~1.5 s of dwell
    r.ecc_correctable_bits = 24;
    r.read_retry_levels = 2;
    r.retry_ber_factor = 0.5;
    return r;
  }
  ScrubEscalationTest() : ScrubTest(FastDecay()) {}
};

TEST_F(ScrubEscalationTest, PatrolUncorrectableStartsEscalationChain) {
  FillAll();
  ScrubConfig config = FastScrub();
  config.refresh_margin = 1e9;  // never refresh: patrol must find decay
  PatrolScrubber scrubber(&sim_, &ftl_, &array_, config);
  scrubber.Start();

  sim_.RunFor(sim::Sec(4));
  scrubber.Stop();
  Drain();

  const ScrubStats& sstats = scrubber.stats();
  const FtlStats& fstats = ftl_.stats();
  EXPECT_GT(sstats.patrol_reads, 0u);
  EXPECT_GT(sstats.patrol_uncorrectable, 0u);
  EXPECT_GT(sstats.escalations, 0u);
  EXPECT_GT(sstats.retired_blocks, 0u);
  EXPECT_EQ(sstats.refreshes, 0u);
  EXPECT_GE(fstats.reliability_retires, sstats.retired_blocks);
  EXPECT_GT(ftl_.allocator().bad_blocks(), 0u);

  // Lost pages stay mapped and keep failing loudly — the replica-refetch
  // hook upstream depends on the Corruption signal surviving the retire.
  uint64_t corrupt = VerifyAll();
  if (fstats.pages_lost > 0) {
    EXPECT_GT(corrupt, 0u);
  }
}

}  // namespace
}  // namespace xssd::ftl
