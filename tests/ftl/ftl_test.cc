#include "ftl/ftl.h"

#include <gtest/gtest.h>

#include <map>

#include "sim/random.h"

namespace xssd::ftl {
namespace {

flash::Geometry SmallGeometry() {
  flash::Geometry g;
  g.channels = 2;
  g.dies_per_channel = 2;
  g.blocks_per_plane = 8;
  g.pages_per_block = 16;
  g.page_bytes = 4096;
  return g;
}

class FtlTest : public ::testing::Test {
 protected:
  FtlTest()
      : array_(&sim_, SmallGeometry(), flash::Timing{}, flash::Reliability{},
               1),
        ftl_(&sim_, &array_, MakeConfig()) {}

  static FtlConfig MakeConfig() {
    FtlConfig config;
    config.buffer_pages = 16;
    config.flush_watermark = 4;
    config.gc_low_watermark = 4;
    return config;
  }

  std::vector<uint8_t> Page(uint8_t fill) {
    return std::vector<uint8_t>(4096, fill);
  }

  Status WriteSync(uint64_t lpn, std::vector<uint8_t> data) {
    Status result = Status::Internal("pending");
    ftl_.WriteBuffered(lpn, std::move(data),
                       [&](Status status) { result = status; });
    sim_.Run();
    return result;
  }

  Result<std::vector<uint8_t>> ReadSync(uint64_t lpn) {
    Status status = Status::Internal("pending");
    std::vector<uint8_t> data;
    ftl_.ReadPage(IoClass::kConventional, lpn,
                  [&](Status s, std::vector<uint8_t> d) {
                    status = s;
                    data = std::move(d);
                  });
    sim_.Run();
    if (!status.ok()) return status;
    return data;
  }

  Status FlushSync() {
    Status result = Status::Internal("pending");
    ftl_.Flush([&](Status status) { result = status; });
    sim_.Run();
    return result;
  }

  sim::Simulator sim_;
  flash::Array array_;
  Ftl ftl_;
};

TEST_F(FtlTest, LpnCountReflectsOverprovisioning) {
  // 12.5% OP on 512 raw pages.
  EXPECT_EQ(ftl_.lpn_count(), 448u);
}

TEST_F(FtlTest, BufferedWriteReadBack) {
  ASSERT_TRUE(WriteSync(10, Page(0xAB)).ok());
  auto data = ReadSync(10);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)[0], 0xAB);
  EXPECT_GE(ftl_.stats().buffer_hits, 1u);  // served from the data buffer
}

TEST_F(FtlTest, BufferedWriteAckIsFasterThanProgram) {
  sim::SimTime acked = 0;
  ftl_.WriteBuffered(3, Page(1), [&](Status) { acked = sim_.Now(); });
  sim_.Run();
  flash::Timing timing;
  EXPECT_LT(acked, timing.program_latency / 4);  // cached-write latency
}

TEST_F(FtlTest, FlushPersistsAndSurvivesBufferDrop) {
  ASSERT_TRUE(WriteSync(5, Page(0x5A)).ok());
  EXPECT_GT(ftl_.dirty_pages(), 0u);
  ASSERT_TRUE(FlushSync().ok());
  EXPECT_EQ(ftl_.dirty_pages(), 0u);
  EXPECT_GE(ftl_.stats().flash_programs, 1u);
  auto data = ReadSync(5);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)[0], 0x5A);
}

TEST_F(FtlTest, FlushOnCleanDeviceCompletes) {
  EXPECT_TRUE(FlushSync().ok());
}

TEST_F(FtlTest, UnwrittenPageReadsZeros) {
  auto data = ReadSync(100);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)[0], 0);
  EXPECT_EQ((*data)[4095], 0);
}

TEST_F(FtlTest, DirectWriteBypassesBuffer) {
  Status result = Status::Internal("pending");
  ftl_.WriteDirect(IoClass::kDestage, 7, Page(0x77),
                   [&](Status status) { result = status; });
  sim_.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ftl_.dirty_pages(), 0u);
  EXPECT_GE(ftl_.stats().flash_programs, 1u);
  auto data = ReadSync(7);
  EXPECT_EQ((*data)[0], 0x77);
}

TEST_F(FtlTest, DirectWriteSupersedesBufferedCopy) {
  ASSERT_TRUE(WriteSync(9, Page(1)).ok());
  Status result = Status::Internal("pending");
  ftl_.WriteDirect(IoClass::kConventional, 9, Page(2),
                   [&](Status status) { result = status; });
  sim_.Run();
  ASSERT_TRUE(result.ok());
  auto data = ReadSync(9);
  EXPECT_EQ((*data)[0], 2);
}

TEST_F(FtlTest, TrimDropsData) {
  ASSERT_TRUE(WriteSync(11, Page(0x11)).ok());
  ASSERT_TRUE(FlushSync().ok());
  ftl_.Trim(11);
  auto data = ReadSync(11);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)[0], 0);  // trimmed page reads zeros
}

TEST_F(FtlTest, OverwriteReturnsLatestVersion) {
  for (uint8_t version = 1; version <= 5; ++version) {
    ASSERT_TRUE(WriteSync(20, Page(version)).ok());
    if (version % 2 == 0) {
      ASSERT_TRUE(FlushSync().ok());
    }
  }
  auto data = ReadSync(20);
  EXPECT_EQ((*data)[0], 5);
}

TEST_F(FtlTest, AdmissionBackpressureDelaysOverflow) {
  // Issue far more writes than the buffer holds; all must eventually ack
  // and all data must be intact.
  int acked = 0;
  for (uint64_t lpn = 0; lpn < 64; ++lpn) {
    ftl_.WriteBuffered(lpn, Page(static_cast<uint8_t>(lpn)),
                       [&](Status status) {
                         EXPECT_TRUE(status.ok());
                         ++acked;
                       });
  }
  sim_.Run();
  EXPECT_EQ(acked, 64);
  ASSERT_TRUE(FlushSync().ok());
  for (uint64_t lpn = 0; lpn < 64; ++lpn) {
    auto data = ReadSync(lpn);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ((*data)[0], static_cast<uint8_t>(lpn)) << "lpn " << lpn;
  }
}

TEST_F(FtlTest, GcReclaimsSpaceUnderChurn) {
  // Overwrite a small working set far beyond raw capacity; GC must keep
  // making erased blocks available and the latest data must survive.
  sim::Rng rng(5);
  std::map<uint64_t, uint8_t> expected;
  for (int i = 0; i < 3000; ++i) {
    uint64_t lpn = rng.Uniform(64);
    uint8_t fill = static_cast<uint8_t>(rng.Next());
    expected[lpn] = fill;
    ftl_.WriteBuffered(lpn, Page(fill), [](Status) {});
    if (i % 64 == 63) sim_.Run();
  }
  sim_.Run();
  ASSERT_TRUE(FlushSync().ok());
  EXPECT_GT(ftl_.stats().gc_erases, 0u);
  EXPECT_GT(ftl_.free_blocks(), 0u);
  for (const auto& [lpn, fill] : expected) {
    auto data = ReadSync(lpn);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ((*data)[0], fill) << "lpn " << lpn;
  }
  // With a write-back buffer coalescing hot pages, the flash-side write
  // count can legitimately undercut host writes; GC relocations push it
  // back up. It must at least be positive and finite.
  EXPECT_GT(ftl_.stats().WriteAmplification(), 0.0);
}

TEST(FtlBadBlocks, ProgramFailuresAreRetriedTransparently) {
  sim::Simulator sim;
  flash::Reliability reliability;
  reliability.program_fail_rate = 0.05;
  flash::Array array(&sim, SmallGeometry(), flash::Timing{}, reliability, 3);
  FtlConfig config;
  config.buffer_pages = 8;
  config.flush_watermark = 2;
  Ftl ftl(&sim, &array, config);

  int failed = 0;
  for (uint64_t lpn = 0; lpn < 100; ++lpn) {
    ftl.WriteDirect(IoClass::kConventional, lpn,
                    std::vector<uint8_t>(4096, static_cast<uint8_t>(lpn)),
                    [&](Status status) {
                      if (!status.ok()) ++failed;
                    });
    sim.Run();
  }
  EXPECT_EQ(failed, 0);  // every failure internally retried on a new block
  EXPECT_GT(ftl.stats().bad_block_retires, 0u);
  // All data readable.
  for (uint64_t lpn = 0; lpn < 100; ++lpn) {
    Status status = Status::Internal("pending");
    std::vector<uint8_t> data;
    ftl.ReadPage(IoClass::kConventional, lpn,
                 [&](Status s, std::vector<uint8_t> d) {
                   status = s;
                   data = std::move(d);
                 });
    sim.Run();
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(data[0], static_cast<uint8_t>(lpn));
  }
}

}  // namespace
}  // namespace xssd::ftl
