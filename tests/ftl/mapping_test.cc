#include "ftl/mapping.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace xssd::ftl {
namespace {

flash::Geometry SmallGeometry() {
  flash::Geometry g;
  g.channels = 2;
  g.dies_per_channel = 2;
  g.blocks_per_plane = 4;
  g.pages_per_block = 8;
  g.page_bytes = 4096;
  return g;
}

TEST(PageMap, InitiallyUnmapped) {
  PageMap map(SmallGeometry(), 64);
  EXPECT_EQ(map.lpn_count(), 64u);
  EXPECT_EQ(map.Lookup(0), kUnmapped);
  EXPECT_EQ(map.mapped_pages(), 0u);
}

TEST(PageMap, MapAndLookup) {
  PageMap map(SmallGeometry(), 64);
  map.Map(5, 40);
  EXPECT_EQ(map.Lookup(5), 40u);
  EXPECT_EQ(map.ReverseLookup(40), 5u);
  EXPECT_EQ(map.mapped_pages(), 1u);
  EXPECT_EQ(map.ValidCount(40 / 8), 1u);
}

TEST(PageMap, RemapInvalidatesOldPhysicalPage) {
  PageMap map(SmallGeometry(), 64);
  map.Map(5, 40);
  map.Map(5, 90);
  EXPECT_EQ(map.Lookup(5), 90u);
  EXPECT_EQ(map.ReverseLookup(40), kUnmapped);
  EXPECT_EQ(map.ValidCount(40 / 8), 0u);
  EXPECT_EQ(map.ValidCount(90 / 8), 1u);
  EXPECT_EQ(map.mapped_pages(), 1u);
}

TEST(PageMap, UnmapTrims) {
  PageMap map(SmallGeometry(), 64);
  map.Map(7, 41);
  map.Unmap(7);
  EXPECT_EQ(map.Lookup(7), kUnmapped);
  EXPECT_EQ(map.ReverseLookup(41), kUnmapped);
  EXPECT_EQ(map.ValidCount(41 / 8), 0u);
  map.Unmap(7);  // idempotent
}

TEST(PageMap, OnBlockErasedClearsReverseEntries) {
  PageMap map(SmallGeometry(), 64);
  map.Map(1, 8);   // block 1, page 0
  map.Map(1, 20);  // relocated to block 2; block 1 entry stale
  map.OnBlockErased(1);
  EXPECT_EQ(map.Lookup(1), 20u);  // forward map untouched
}

TEST(BlockAllocator, AllPagesAllocatableExactlyOnce) {
  flash::Geometry g = SmallGeometry();
  BlockAllocator allocator(g);
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < g.pages(); ++i) {
    Result<flash::Address> addr =
        allocator.AllocatePage(BlockAllocator::kConventionalStream);
    ASSERT_TRUE(addr.ok()) << "at page " << i;
    uint64_t ppn = flash::PageIndex(g, *addr);
    EXPECT_TRUE(seen.insert(ppn).second) << "duplicate page " << ppn;
  }
  EXPECT_TRUE(allocator
                  .AllocatePage(BlockAllocator::kConventionalStream)
                  .status()
                  .IsResourceExhausted());
}

TEST(BlockAllocator, PagesWithinBlockAreInOrder) {
  flash::Geometry g = SmallGeometry();
  BlockAllocator allocator(g);
  std::map<uint64_t, uint32_t> next_page;  // block -> expected next page
  for (uint64_t i = 0; i < g.pages(); ++i) {
    flash::Address addr =
        *allocator.AllocatePage(BlockAllocator::kConventionalStream);
    uint64_t block = flash::BlockIndex(g, addr);
    EXPECT_EQ(addr.page, next_page[block]) << "block " << block;
    next_page[block] = addr.page + 1;
  }
}

TEST(BlockAllocator, ConsecutiveAllocationsSpreadAcrossChannels) {
  flash::Geometry g = SmallGeometry();
  BlockAllocator allocator(g);
  flash::Address a =
      *allocator.AllocatePage(BlockAllocator::kConventionalStream);
  flash::Address b =
      *allocator.AllocatePage(BlockAllocator::kConventionalStream);
  EXPECT_NE(a.channel, b.channel);
}

TEST(BlockAllocator, StreamsUseSeparateBlocks) {
  flash::Geometry g = SmallGeometry();
  BlockAllocator allocator(g);
  flash::Address conv =
      *allocator.AllocatePage(BlockAllocator::kConventionalStream);
  flash::Address dest =
      *allocator.AllocatePage(BlockAllocator::kDestageStream);
  flash::Address gc = *allocator.AllocatePage(BlockAllocator::kGcStream);
  EXPECT_NE(flash::BlockIndex(g, conv), flash::BlockIndex(g, dest));
  EXPECT_NE(flash::BlockIndex(g, conv), flash::BlockIndex(g, gc));
  EXPECT_NE(flash::BlockIndex(g, dest), flash::BlockIndex(g, gc));
}

TEST(BlockAllocator, SealedBlocksAppearAfterFilling) {
  flash::Geometry g = SmallGeometry();
  BlockAllocator allocator(g);
  EXPECT_TRUE(allocator.sealed_blocks().empty());
  for (uint32_t i = 0; i < g.pages_per_block * g.dies(); ++i) {
    allocator.AllocatePage(BlockAllocator::kConventionalStream);
  }
  // One full block per die sealed.
  EXPECT_EQ(allocator.sealed_blocks().size(), g.dies());
}

TEST(BlockAllocator, ReleaseReturnsBlockToPool) {
  flash::Geometry g = SmallGeometry();
  BlockAllocator allocator(g);
  uint64_t before = allocator.free_blocks();
  // Exhaust, then release one block.
  while (allocator.AllocatePage(BlockAllocator::kConventionalStream).ok()) {
  }
  EXPECT_EQ(allocator.free_blocks(), 0u);
  allocator.Release(3);
  EXPECT_EQ(allocator.free_blocks(), 1u);
  // 8 more pages allocatable.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(
        allocator.AllocatePage(BlockAllocator::kConventionalStream).ok());
  }
  EXPECT_FALSE(
      allocator.AllocatePage(BlockAllocator::kConventionalStream).ok());
  (void)before;
}

TEST(BlockAllocator, MarkBadRetiresBlock) {
  flash::Geometry g = SmallGeometry();
  BlockAllocator allocator(g);
  uint64_t free_before = allocator.free_blocks();
  allocator.MarkBad(0);  // still in the free list
  EXPECT_EQ(allocator.free_blocks(), free_before - 1);
  EXPECT_EQ(allocator.bad_blocks(), 1u);
}

}  // namespace
}  // namespace xssd::ftl
