#include "ftl/mapping.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace xssd::ftl {
namespace {

flash::Geometry SmallGeometry() {
  flash::Geometry g;
  g.channels = 2;
  g.dies_per_channel = 2;
  g.blocks_per_plane = 4;
  g.pages_per_block = 8;
  g.page_bytes = 4096;
  return g;
}

TEST(PageMap, InitiallyUnmapped) {
  PageMap map(SmallGeometry(), 64);
  EXPECT_EQ(map.lpn_count(), 64u);
  EXPECT_EQ(map.Lookup(0), kUnmapped);
  EXPECT_EQ(map.mapped_pages(), 0u);
}

TEST(PageMap, MapAndLookup) {
  PageMap map(SmallGeometry(), 64);
  EXPECT_TRUE(map.Map(5, 40, 1));
  EXPECT_EQ(map.Lookup(5), 40u);
  EXPECT_EQ(map.ReverseLookup(40), 5u);
  EXPECT_EQ(map.mapped_pages(), 1u);
  EXPECT_EQ(map.ValidCount(40 / 8), 1u);
  EXPECT_EQ(map.SeqOf(5), 1u);
}

TEST(PageMap, RemapInvalidatesOldPhysicalPage) {
  PageMap map(SmallGeometry(), 64);
  EXPECT_TRUE(map.Map(5, 40, 1));
  EXPECT_TRUE(map.Map(5, 90, 2));
  EXPECT_EQ(map.Lookup(5), 90u);
  EXPECT_EQ(map.ReverseLookup(40), kUnmapped);
  EXPECT_EQ(map.ValidCount(40 / 8), 0u);
  EXPECT_EQ(map.ValidCount(90 / 8), 1u);
  EXPECT_EQ(map.mapped_pages(), 1u);
}

TEST(PageMap, StaleSeqIsRejected) {
  PageMap map(SmallGeometry(), 64);
  EXPECT_TRUE(map.Map(5, 90, 7));
  // An older version whose program completion lost the race must not
  // shadow the newer mapping.
  EXPECT_FALSE(map.Map(5, 40, 3));
  EXPECT_EQ(map.Lookup(5), 90u);
  EXPECT_EQ(map.SeqOf(5), 7u);
  EXPECT_EQ(map.ReverseLookup(40), kUnmapped);
  EXPECT_EQ(map.ValidCount(40 / 8), 0u);
}

TEST(PageMap, MapRelocatedMovesWithoutSeqChange) {
  PageMap map(SmallGeometry(), 64);
  EXPECT_TRUE(map.Map(5, 40, 6));
  EXPECT_TRUE(map.MapRelocated(5, 40, 90));
  EXPECT_EQ(map.Lookup(5), 90u);
  EXPECT_EQ(map.SeqOf(5), 6u);
  EXPECT_EQ(map.ReverseLookup(40), kUnmapped);
  EXPECT_EQ(map.ValidCount(40 / 8), 0u);
  EXPECT_EQ(map.ValidCount(90 / 8), 1u);
  EXPECT_EQ(map.mapped_pages(), 1u);
}

TEST(PageMap, MapRelocatedDeadOnArrivalWhenSuperseded) {
  PageMap map(SmallGeometry(), 64);
  EXPECT_TRUE(map.Map(5, 40, 6));
  // Host rewrote the lpn while GC's copy was in flight.
  EXPECT_TRUE(map.Map(5, 50, 7));
  EXPECT_FALSE(map.MapRelocated(5, 40, 90));
  EXPECT_EQ(map.Lookup(5), 50u);
  EXPECT_EQ(map.ReverseLookup(90), kUnmapped);
  EXPECT_EQ(map.ValidCount(90 / 8), 0u);
}

TEST(PageMap, SameSeqOlderStampIsRejected) {
  // Two physical attempts of the SAME logical version (a duplicate
  // writeback): the copy with the newer program stamp wins regardless of
  // completion order — the exact order an OOB recovery scan replays.
  PageMap map(SmallGeometry(), 64);
  EXPECT_TRUE(map.Map(5, 90, 7, /*stamp=*/12));
  EXPECT_FALSE(map.Map(5, 40, 7, /*stamp=*/11));  // older stamp lost the race
  EXPECT_EQ(map.Lookup(5), 90u);
  EXPECT_EQ(map.StampOf(5), 12u);
  EXPECT_EQ(map.ReverseLookup(40), kUnmapped);
  // The newer stamp of the same seq applies.
  EXPECT_TRUE(map.Map(5, 40, 7, /*stamp=*/13));
  EXPECT_EQ(map.Lookup(5), 40u);
  EXPECT_EQ(map.StampOf(5), 13u);
}

TEST(PageMap, MapRelocatedAppliesOverSupersededSameSeqDuplicate) {
  // A relocation whose source was superseded mid-flight by ANOTHER copy
  // of the same logical version: the relocated copy outranks it when its
  // (seq, stamp) is newer — live order must mirror the recovery order.
  PageMap map(SmallGeometry(), 64);
  EXPECT_TRUE(map.Map(5, 40, 6, /*stamp=*/20));
  // Duplicate writeback of seq 6 with an older stamp landed late and was
  // applied via a path that saw the map before relocation started.
  EXPECT_TRUE(map.Map(5, 50, 6, /*stamp=*/21));
  // The relocation of the copy stamped 22 still wins...
  EXPECT_TRUE(map.MapRelocated(5, 40, 90, /*seq=*/6, /*stamp=*/22));
  EXPECT_EQ(map.Lookup(5), 90u);
  EXPECT_EQ(map.StampOf(5), 22u);
  EXPECT_EQ(map.ReverseLookup(50), kUnmapped);
  // ...but a stale-stamp or older-version relocation stays dead on
  // arrival once superseded.
  EXPECT_TRUE(map.Map(5, 50, 6, /*stamp=*/30));
  EXPECT_FALSE(map.MapRelocated(5, 90, 91, /*seq=*/6, /*stamp=*/22));
  EXPECT_FALSE(map.MapRelocated(5, 90, 91, /*seq=*/5, /*stamp=*/99));
  EXPECT_EQ(map.Lookup(5), 50u);
  EXPECT_EQ(map.ReverseLookup(91), kUnmapped);
}

TEST(PageMap, UnmapTrims) {
  PageMap map(SmallGeometry(), 64);
  EXPECT_TRUE(map.Map(7, 41, 4));
  map.Unmap(7);
  EXPECT_EQ(map.Lookup(7), kUnmapped);
  EXPECT_EQ(map.ReverseLookup(41), kUnmapped);
  EXPECT_EQ(map.ValidCount(41 / 8), 0u);
  EXPECT_EQ(map.SeqOf(7), 4u);  // seq floor survives the trim
  map.Unmap(7);                 // idempotent
}

TEST(PageMap, OnBlockErasedClearsReverseEntries) {
  PageMap map(SmallGeometry(), 64);
  EXPECT_TRUE(map.Map(1, 8, 1));   // block 1, page 0
  EXPECT_TRUE(map.Map(1, 20, 2));  // relocated to block 2; block 1 stale
  map.OnBlockErased(1);
  EXPECT_EQ(map.Lookup(1), 20u);  // forward map untouched
}

TEST(PageMap, EqualityCoversSeqState) {
  PageMap a(SmallGeometry(), 64);
  PageMap b(SmallGeometry(), 64);
  EXPECT_TRUE(a == b);
  a.Map(3, 17, 5);
  EXPECT_FALSE(a == b);
  b.Map(3, 17, 5);
  EXPECT_TRUE(a == b);
  // Same physical layout, different version history: not equal.
  a.Map(4, 18, 9);
  b.Map(4, 18, 8);
  EXPECT_FALSE(a == b);
}

TEST(BlockAllocator, AllPagesAllocatableExactlyOnce) {
  flash::Geometry g = SmallGeometry();
  BlockAllocator allocator(g);
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < g.pages(); ++i) {
    Result<flash::Address> addr =
        allocator.AllocatePage(BlockAllocator::kConventionalStream);
    ASSERT_TRUE(addr.ok()) << "at page " << i;
    uint64_t ppn = flash::PageIndex(g, *addr);
    EXPECT_TRUE(seen.insert(ppn).second) << "duplicate page " << ppn;
  }
  EXPECT_TRUE(allocator
                  .AllocatePage(BlockAllocator::kConventionalStream)
                  .status()
                  .IsResourceExhausted());
}

TEST(BlockAllocator, PagesWithinBlockAreInOrder) {
  flash::Geometry g = SmallGeometry();
  BlockAllocator allocator(g);
  std::map<uint64_t, uint32_t> next_page;  // block -> expected next page
  for (uint64_t i = 0; i < g.pages(); ++i) {
    flash::Address addr =
        *allocator.AllocatePage(BlockAllocator::kConventionalStream);
    uint64_t block = flash::BlockIndex(g, addr);
    EXPECT_EQ(addr.page, next_page[block]) << "block " << block;
    next_page[block] = addr.page + 1;
  }
}

TEST(BlockAllocator, ConsecutiveAllocationsSpreadAcrossChannels) {
  flash::Geometry g = SmallGeometry();
  BlockAllocator allocator(g);
  flash::Address a =
      *allocator.AllocatePage(BlockAllocator::kConventionalStream);
  flash::Address b =
      *allocator.AllocatePage(BlockAllocator::kConventionalStream);
  EXPECT_NE(a.channel, b.channel);
}

TEST(BlockAllocator, StreamsUseSeparateBlocks) {
  flash::Geometry g = SmallGeometry();
  BlockAllocator allocator(g);
  flash::Address conv =
      *allocator.AllocatePage(BlockAllocator::kConventionalStream);
  flash::Address dest =
      *allocator.AllocatePage(BlockAllocator::kDestageStream);
  flash::Address gc = *allocator.AllocatePage(BlockAllocator::kGcStream);
  EXPECT_NE(flash::BlockIndex(g, conv), flash::BlockIndex(g, dest));
  EXPECT_NE(flash::BlockIndex(g, conv), flash::BlockIndex(g, gc));
  EXPECT_NE(flash::BlockIndex(g, dest), flash::BlockIndex(g, gc));
}

TEST(BlockAllocator, SealedBlocksAppearAfterFilling) {
  flash::Geometry g = SmallGeometry();
  BlockAllocator allocator(g);
  EXPECT_TRUE(allocator.sealed_blocks().empty());
  for (uint32_t i = 0; i < g.pages_per_block * g.dies(); ++i) {
    allocator.AllocatePage(BlockAllocator::kConventionalStream);
  }
  // One full block per die sealed.
  EXPECT_EQ(allocator.sealed_blocks().size(), g.dies());
}

TEST(BlockAllocator, ReleaseReturnsBlockToPool) {
  flash::Geometry g = SmallGeometry();
  BlockAllocator allocator(g);
  uint64_t before = allocator.free_blocks();
  // Exhaust, then release one block.
  while (allocator.AllocatePage(BlockAllocator::kConventionalStream).ok()) {
  }
  EXPECT_EQ(allocator.free_blocks(), 0u);
  allocator.Release(3);
  EXPECT_EQ(allocator.free_blocks(), 1u);
  // 8 more pages allocatable.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(
        allocator.AllocatePage(BlockAllocator::kConventionalStream).ok());
  }
  EXPECT_FALSE(
      allocator.AllocatePage(BlockAllocator::kConventionalStream).ok());
  (void)before;
}

TEST(BlockAllocator, MarkBadRetiresBlock) {
  flash::Geometry g = SmallGeometry();
  BlockAllocator allocator(g);
  uint64_t free_before = allocator.free_blocks();
  allocator.MarkBad(0);  // still in the free list
  EXPECT_EQ(allocator.free_blocks(), free_before - 1);
  EXPECT_EQ(allocator.bad_blocks(), 1u);
}

}  // namespace
}  // namespace xssd::ftl
