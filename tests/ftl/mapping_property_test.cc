#include <gtest/gtest.h>

#include <deque>
#include <unordered_map>
#include <vector>

#include "check/mapping_oracle.h"
#include "ftl/ftl.h"
#include "ftl/mapping.h"
#include "sim/random.h"

namespace xssd::ftl {
namespace {

flash::Geometry SmallGeometry() {
  flash::Geometry g;
  g.channels = 2;
  g.dies_per_channel = 2;
  g.blocks_per_plane = 4;
  g.pages_per_block = 8;
  g.page_bytes = 4096;
  return g;
}

// Minimal write-point discipline for driving a bare PageMap the way the
// allocator would: each physical page is programmed at most once per erase
// cycle, blocks recycle only when empty.
struct FakeFlash {
  explicit FakeFlash(const flash::Geometry& g) : geometry(g) {
    for (uint64_t b = 0; b < g.blocks(); ++b) free_blocks.push_back(b);
  }

  // Next programmable ppn, opening a fresh block when needed.
  uint64_t AllocatePpn() {
    if (open_block == kUnmapped) {
      if (free_blocks.empty()) return kUnmapped;
      open_block = free_blocks.front();
      free_blocks.pop_front();
      next_page = 0;
    }
    uint64_t ppn = open_block * geometry.pages_per_block + next_page;
    if (++next_page == geometry.pages_per_block) {
      full_blocks.push_back(open_block);
      open_block = kUnmapped;
    }
    return ppn;
  }

  flash::Geometry geometry;
  std::deque<uint64_t> free_blocks;
  std::vector<uint64_t> full_blocks;
  uint64_t open_block = kUnmapped;
  uint32_t next_page = 0;
};

// Random Map / stale-Map / Unmap / OnBlockErased churn, cross-checked
// against a shadow model and the structural oracle after every step.
TEST(MappingProperty, RandomOpsStayConsistent) {
  const flash::Geometry geometry = SmallGeometry();
  const uint64_t lpn_count = 96;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    sim::Rng rng(seed);
    PageMap map(geometry, lpn_count);
    FakeFlash flash(geometry);
    struct ShadowEntry {
      uint64_t ppn;
      uint64_t seq;
    };
    std::unordered_map<uint64_t, ShadowEntry> shadow;
    uint64_t next_seq = 1;

    for (int step = 0; step < 1500; ++step) {
      uint64_t dice = rng.Uniform(100);
      if (dice < 55) {
        // Host write: fresh version to a fresh physical page.
        uint64_t lpn = rng.Uniform(lpn_count);
        uint64_t ppn = flash.AllocatePpn();
        if (ppn == kUnmapped) continue;  // out of space this round
        uint64_t seq = next_seq++;
        ASSERT_TRUE(map.Map(lpn, ppn, seq));
        shadow[lpn] = ShadowEntry{ppn, seq};
      } else if (dice < 65) {
        // A program completion that lost the race: older seq must bounce.
        uint64_t lpn = rng.Uniform(lpn_count);
        auto it = shadow.find(lpn);
        if (it == shadow.end() || it->second.seq == 0) continue;
        uint64_t ppn = flash.AllocatePpn();
        if (ppn == kUnmapped) continue;
        EXPECT_FALSE(map.Map(lpn, ppn, it->second.seq - 1));
      } else if (dice < 80) {
        // TRIM.
        uint64_t lpn = rng.Uniform(lpn_count);
        map.Unmap(lpn);
        shadow.erase(lpn);
      } else {
        // Erase a full block that holds no valid data.
        for (size_t i = 0; i < flash.full_blocks.size(); ++i) {
          uint64_t block = flash.full_blocks[i];
          if (map.ValidCount(block) != 0) continue;
          map.OnBlockErased(block);
          flash.full_blocks.erase(flash.full_blocks.begin() +
                                  static_cast<long>(i));
          flash.free_blocks.push_back(block);
          break;
        }
      }

      std::vector<check::Divergence> divergences =
          check::CheckMappingConsistent(map, geometry);
      ASSERT_TRUE(divergences.empty())
          << "seed " << seed << " step " << step << ": "
          << divergences[0].rule << " — " << divergences[0].detail;
      ASSERT_EQ(map.mapped_pages(), shadow.size());
      for (const auto& [lpn, entry] : shadow) {
        ASSERT_EQ(map.Lookup(lpn), entry.ppn) << "lpn " << lpn;
        ASSERT_EQ(map.SeqOf(lpn), entry.seq) << "lpn " << lpn;
      }
    }
  }
}

// Differential recovery property: at arbitrary quiesced points of a random
// buffered/direct write workload — GC storms included — RebuildFromOob()
// must reproduce the live map exactly. No Flush required: a dirty page that
// never reached NAND is absent from both maps.
TEST(MappingProperty, RebuildMatchesLiveMapAtArbitraryStopPoints) {
  for (uint64_t seed = 11; seed <= 13; ++seed) {
    sim::Simulator sim;
    flash::Array array(&sim, SmallGeometry(), flash::Timing{},
                       flash::Reliability{}, seed);
    FtlConfig config;
    config.buffer_pages = 16;
    config.flush_watermark = 4;
    config.gc_low_watermark = 4;
    Ftl ftl(&sim, &array, config);
    sim::Rng rng(seed);

    for (int step = 0; step < 900; ++step) {
      uint64_t lpn = rng.Uniform(48);  // small working set → heavy churn
      uint8_t fill = static_cast<uint8_t>(rng.Next());
      if (rng.Uniform(4) == 0) {
        ftl.WriteDirect(IoClass::kDestage, lpn,
                        std::vector<uint8_t>(4096, fill), [](Status) {});
      } else {
        ftl.WriteBuffered(lpn, std::vector<uint8_t>(4096, fill),
                          [](Status) {});
      }
      if (step % 100 == 99) {
        sim.Run();  // quiesce: drain programs, GC passes, writeback
        std::vector<check::Divergence> divergences =
            check::CheckRebuildMatches(ftl, array.geometry());
        ASSERT_TRUE(divergences.empty())
            << "seed " << seed << " step " << step << ": "
            << divergences[0].rule << " — " << divergences[0].detail;
      }
    }
  }
}

// An untouched device rebuilds to an empty map.
TEST(MappingProperty, RebuildOnPristineDeviceIsEmpty) {
  sim::Simulator sim;
  flash::Array array(&sim, SmallGeometry(), flash::Timing{},
                     flash::Reliability{}, 1);
  Ftl ftl(&sim, &array, FtlConfig{});
  RebuildReport report;
  PageMap rebuilt = ftl.RebuildFromOob(&report);
  EXPECT_EQ(report.pages_scanned, 0u);
  EXPECT_EQ(report.mapped, 0u);
  EXPECT_TRUE(rebuilt == ftl.page_map());
}

}  // namespace
}  // namespace xssd::ftl
