#include "ftl/scheduler.h"

#include <gtest/gtest.h>

namespace xssd::ftl {
namespace {

flash::Geometry SmallGeometry() {
  flash::Geometry g;
  g.channels = 1;  // single channel: forces bus arbitration
  g.dies_per_channel = 4;
  g.blocks_per_plane = 8;
  g.pages_per_block = 16;
  g.page_bytes = 4096;
  return g;
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest()
      : array_(&sim_, SmallGeometry(), flash::Timing{}, flash::Reliability{},
               1),
        scheduler_(&sim_, &array_) {}

  std::vector<uint8_t> Page(uint8_t fill) {
    return std::vector<uint8_t>(4096, fill);
  }

  /// Queue a program on (die, block) recording its completion order.
  void QueueProgram(IoClass io_class, uint32_t die, uint32_t block,
                    uint32_t page, std::vector<int>* order, int tag) {
    flash::Address addr{0, die, 0, block, page};
    scheduler_.Program(io_class, addr, Page(static_cast<uint8_t>(tag)),
                       [order, tag](Status status) {
                         ASSERT_TRUE(status.ok());
                         order->push_back(tag);
                       });
  }

  sim::Simulator sim_;
  flash::Array array_;
  Scheduler scheduler_;
};

TEST_F(SchedulerTest, SingleOpCompletes) {
  bool done = false;
  scheduler_.Program(IoClass::kConventional, flash::Address{0, 0, 0, 0, 0},
                     Page(1), [&](Status status) {
                       EXPECT_TRUE(status.ok());
                       done = true;
                     });
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(scheduler_.inflight(), 0u);
  EXPECT_EQ(scheduler_.completed_bytes(IoClass::kConventional), 4096u);
}

TEST_F(SchedulerTest, DestagePriorityServesDestageFirst) {
  scheduler_.set_policy(SchedulingPolicy::kDestagePriority);
  std::vector<int> order;
  // Enqueue conventional ops first (earlier arrival), then destage ops to
  // *different* dies. Under destage priority the destage ops must win the
  // bus even though they arrived later.
  // First occupy the bus so everything below queues up.
  QueueProgram(IoClass::kConventional, 0, 0, 0, &order, 0);
  QueueProgram(IoClass::kConventional, 1, 0, 0, &order, 1);
  QueueProgram(IoClass::kConventional, 2, 0, 0, &order, 2);
  QueueProgram(IoClass::kDestage, 3, 1, 0, &order, 100);
  sim_.Run();
  ASSERT_EQ(order.size(), 4u);
  // The destage op (tag 100) must complete before the last-queued
  // conventional ops (it jumps the bus queue after op 0 holds it).
  auto pos = [&](int tag) {
    return std::find(order.begin(), order.end(), tag) - order.begin();
  };
  EXPECT_LT(pos(100), pos(2));
}

TEST_F(SchedulerTest, ConventionalPriorityMirrors) {
  scheduler_.set_policy(SchedulingPolicy::kConventionalPriority);
  std::vector<int> order;
  QueueProgram(IoClass::kDestage, 0, 1, 0, &order, 0);
  QueueProgram(IoClass::kDestage, 1, 1, 0, &order, 1);
  QueueProgram(IoClass::kDestage, 2, 1, 0, &order, 2);
  QueueProgram(IoClass::kConventional, 3, 0, 0, &order, 100);
  sim_.Run();
  auto pos = [&](int tag) {
    return std::find(order.begin(), order.end(), tag) - order.begin();
  };
  EXPECT_LT(pos(100), pos(2));
}

TEST_F(SchedulerTest, NeutralIsArrivalOrderAcrossClasses) {
  scheduler_.set_policy(SchedulingPolicy::kNeutral);
  std::vector<int> order;
  QueueProgram(IoClass::kConventional, 0, 0, 0, &order, 0);
  QueueProgram(IoClass::kDestage, 1, 1, 0, &order, 1);
  QueueProgram(IoClass::kConventional, 2, 0, 0, &order, 2);
  QueueProgram(IoClass::kDestage, 3, 1, 0, &order, 3);
  sim_.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST_F(SchedulerTest, OpportunisticGapFilling) {
  scheduler_.set_policy(SchedulingPolicy::kDestagePriority);
  std::vector<int> order;
  // Two destage ops to the SAME die (the second must wait for the die) and
  // one conventional op to a different die: the conventional op rides in
  // the gap while the high-priority class is die-blocked.
  QueueProgram(IoClass::kDestage, 0, 1, 0, &order, 0);
  QueueProgram(IoClass::kDestage, 0, 1, 1, &order, 1);
  QueueProgram(IoClass::kConventional, 1, 0, 0, &order, 100);
  sim_.Run();
  ASSERT_EQ(order.size(), 3u);
  auto pos = [&](int tag) {
    return std::find(order.begin(), order.end(), tag) - order.begin();
  };
  EXPECT_LT(pos(100), pos(1));  // the gap was used
}

TEST_F(SchedulerTest, QueuedCountsTrack) {
  QueueProgram(IoClass::kConventional, 0, 0, 0, new std::vector<int>, 0);
  EXPECT_EQ(scheduler_.queued(IoClass::kConventional) +
                scheduler_.inflight(),
            1u);
  sim_.Run();
  EXPECT_EQ(scheduler_.queued(IoClass::kConventional), 0u);
}

TEST_F(SchedulerTest, ReadAndEraseComplete) {
  bool programmed = false, read_ok = false, erased = false;
  flash::Address addr{0, 0, 0, 0, 0};
  scheduler_.Program(IoClass::kConventional, addr, Page(7),
                     [&](Status s) { programmed = s.ok(); });
  scheduler_.Read(IoClass::kConventional, addr,
                  [&](Status s, std::vector<uint8_t> data) {
                    read_ok = s.ok() && data[0] == 7;
                  });
  scheduler_.Erase(IoClass::kConventional, addr,
                   [&](Status s) { erased = s.ok(); });
  sim_.Run();
  EXPECT_TRUE(programmed);
  EXPECT_TRUE(read_ok);
  EXPECT_TRUE(erased);
}

TEST_F(SchedulerTest, BusOverlapsDiePrograms) {
  // Two programs to different dies on one channel: total time should be
  // roughly transfer + transfer + tPROG (overlapped), well under
  // 2 * (transfer + tPROG).
  sim::SimTime done = 0;
  scheduler_.Program(IoClass::kConventional, flash::Address{0, 0, 0, 0, 0},
                     Page(1), [&](Status) { done = sim_.Now(); });
  scheduler_.Program(IoClass::kConventional, flash::Address{0, 1, 0, 0, 0},
                     Page(2), [&](Status) { done = sim_.Now(); });
  sim_.Run();
  flash::Timing timing;
  sim::SimTime transfer = sim::TransferTime(4096, timing.channel_bytes_per_sec);
  EXPECT_LT(done, 2 * (transfer + timing.program_latency));
  EXPECT_GE(done, 2 * transfer + timing.program_latency);
}

}  // namespace
}  // namespace xssd::ftl
