// End of the uncorrectable-read escalation chain (media reliability x HA):
// a tail read that hits an uncorrectable destage-ring page on the primary
// pulls the lost stream extent out of a live replica's PM ring over the
// NTB window and completes with zero client-visible errors — while the
// device-side chain (FTL escalation, patrol scrubber) runs underneath.

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "ha/supervisor.h"
#include "host/node.h"
#include "host/xcalls.h"

namespace xssd::host {
namespace {

core::VillarsConfig FetchDeviceConfig() {
  core::VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 64;
  ha::ReplicaSupervisor::ConfigureDevice(&config, 2);
  // The patrol scrubber runs for the whole test (RunWhile-pumped helpers
  // keep the self-rearming tick from wedging any blocking call).
  config.scrub.enabled = true;
  config.scrub.scan_interval = sim::Ms(1);
  config.scrub.pages_per_sec = 8000.0;
  return config;
}

struct FetchCluster {
  sim::Simulator sim;
  StorageNode primary;
  StorageNode secondary;

  FetchCluster()
      : primary(&sim, FetchDeviceConfig(), pcie::FabricConfig{}, "pri"),
        secondary(&sim, FetchDeviceConfig(), pcie::FabricConfig{}, "sec") {
    EXPECT_TRUE(primary.Init().ok());
    EXPECT_TRUE(secondary.Init().ok());
  }
};

TEST(ReplicaFetch, UncorrectableRingReadCompletesFromReplicaOverNtb) {
  FetchCluster cluster;
  ReplicationGroup group({&cluster.primary, &cluster.secondary});
  ASSERT_TRUE(
      group.Setup(core::ReplicationProtocol::kEager, sim::UsF(0.8)).ok());

  // Arm the client's replica window: slot 1 (slot 0 carries the mirror
  // stream) mapped onto the secondary's CMB BAR.
  Result<uint64_t> window =
      cluster.primary.ConnectWindowTo(1, cluster.secondary);
  ASSERT_TRUE(window.ok());
  cluster.primary.client().SetReplicaWindow(*window);

  // Append and replicate a log prefix; the eager fsync ack means the
  // replica's PM ring persists every byte.
  std::vector<uint8_t> wal(20000);
  for (size_t i = 0; i < wal.size(); ++i) {
    wal[i] = static_cast<uint8_t>(i * 131 + 17);
  }
  ASSERT_EQ(x_pwrite(cluster.sim, cluster.primary.client(), wal.data(),
                     wal.size()),
            static_cast<ssize_t>(wal.size()));
  ASSERT_EQ(x_fsync(cluster.sim, cluster.primary.client()), 0);
  cluster.sim.RunFor(sim::Ms(5));  // destaging settles

  // From now every primary flash read is uncorrectable (the model of a
  // block that decayed past the retry ladder). The replica is untouched.
  fault::FaultPlan plan =
      fault::FaultPlanBuilder("dead-ring-read")
          .Window(fault::FaultKind::kFlashReadUncorrectable,
                  cluster.sim.Now(), fault::FaultSpec::kForever)
          .Build();
  fault::FaultInjector injector(&cluster.sim, plan, 5);
  cluster.primary.ArmFaults(&injector, /*install_crash_handler=*/false);

  // Tail-read the whole prefix. Every ring-slot read dies with
  // Corruption; the client must source each lost extent from the replica
  // and the caller must never see an error.
  std::vector<uint8_t> out(wal.size());
  ASSERT_EQ(x_pread(cluster.sim, cluster.primary.client(),
                    cluster.primary.driver(), out.data(), out.size()),
            static_cast<ssize_t>(out.size()));
  EXPECT_EQ(out, wal);  // byte-identical through the replica path

  EXPECT_GE(cluster.primary.client().replica_fetches(), 1u);
  EXPECT_GE(cluster.primary.client().replica_fetched_bytes(), wal.size());
  EXPECT_EQ(cluster.primary.client().read_deadline_failures(), 0u);
  // The device recorded the uncorrectable host reads. (No retire here:
  // the ring pages sit in a still-open frontier block, and only sealed
  // blocks escalate — scrub_test covers that half of the chain.)
  EXPECT_GE(cluster.primary.device().ftl().stats().uncorrectable_reads, 1u);
}

TEST(ReplicaFetch, DisarmedWindowSurfacesCorruption) {
  // Without SetReplicaWindow the seed behaviour is preserved: the
  // Corruption propagates to the caller instead of silently recovering.
  FetchCluster cluster;
  ReplicationGroup group({&cluster.primary, &cluster.secondary});
  ASSERT_TRUE(
      group.Setup(core::ReplicationProtocol::kEager, sim::UsF(0.8)).ok());

  std::vector<uint8_t> wal(8000, 0x5C);
  ASSERT_EQ(x_pwrite(cluster.sim, cluster.primary.client(), wal.data(),
                     wal.size()),
            static_cast<ssize_t>(wal.size()));
  ASSERT_EQ(x_fsync(cluster.sim, cluster.primary.client()), 0);
  cluster.sim.RunFor(sim::Ms(5));

  fault::FaultPlan plan =
      fault::FaultPlanBuilder("dead-ring-read")
          .Window(fault::FaultKind::kFlashReadUncorrectable,
                  cluster.sim.Now(), fault::FaultSpec::kForever)
          .Build();
  fault::FaultInjector injector(&cluster.sim, plan, 5);
  cluster.primary.ArmFaults(&injector, /*install_crash_handler=*/false);

  Status status = Status::OK();
  bool fired = false;
  cluster.primary.client().ReadTail(&cluster.primary.driver(), 100,
                                    [&](Status s, std::vector<uint8_t>) {
                                      status = s;
                                      fired = true;
                                    });
  cluster.sim.RunWhile([&]() { return fired; });
  ASSERT_TRUE(fired);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_EQ(cluster.primary.client().replica_fetches(), 0u);
}

}  // namespace
}  // namespace xssd::host
