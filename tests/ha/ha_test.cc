// Replication-supervisor lifecycle tests: group formation, heartbeat
// failure detection, fenced failover (exactly-once promotion, stale-writer
// rejection), flap tolerance, membership remove/re-admit with resync, and
// the manual demotion/re-promotion round trips the supervisor automates.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "ha/supervisor.h"
#include "host/node.h"
#include "host/sync.h"
#include "host/xcalls.h"

namespace xssd {
namespace {

core::VillarsConfig HaDeviceConfig(size_t cluster) {
  core::VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 64;
  ha::ReplicaSupervisor::ConfigureDevice(&config, cluster);
  return config;
}

/// An Init()ed cluster with a supervisor, ready for Setup()/Start().
struct Cluster {
  explicit Cluster(size_t n, ha::HaConfig ha_config = {}) {
    for (size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<host::StorageNode>(
          &sim, HaDeviceConfig(n), pcie::FabricConfig{},
          "n" + std::to_string(i)));
      EXPECT_TRUE(nodes.back()->Init().ok());
    }
    std::vector<host::StorageNode*> raw;
    for (auto& node : nodes) raw.push_back(node.get());
    supervisor = std::make_unique<ha::ReplicaSupervisor>(&sim, raw,
                                                         ha_config);
  }

  uint64_t ReadReg(size_t i, uint64_t reg) {
    uint8_t raw[8] = {0};
    EXPECT_TRUE(nodes[i]
                    ->fabric()
                    .FunctionalRead(host::NodeLayout::kCmbBase + reg, raw, 8)
                    .ok());
    uint64_t value = 0;
    std::memcpy(&value, raw, 8);
    return value;
  }

  size_t CountLivePrimaries() {
    size_t primaries = 0;
    for (auto& node : nodes) {
      if (!node->device().halted() &&
          node->device().transport().role() == core::Role::kPrimary) {
        ++primaries;
      }
    }
    return primaries;
  }

  sim::Simulator sim;
  std::vector<std::unique_ptr<host::StorageNode>> nodes;
  std::unique_ptr<ha::ReplicaSupervisor> supervisor;
};

std::vector<uint8_t> Pattern(size_t len, uint64_t start = 0) {
  std::vector<uint8_t> data(len);
  for (size_t i = 0; i < len; ++i) {
    data[i] = static_cast<uint8_t>((start + i) * 131 + 17);
  }
  return data;
}

TEST(ReplicaSupervisor, SetupFormsGroupAndReplicates) {
  Cluster cluster(3);
  ASSERT_TRUE(cluster.supervisor->Setup().ok());
  cluster.supervisor->Start();

  EXPECT_EQ(cluster.nodes[0]->device().transport().role(),
            core::Role::kPrimary);
  EXPECT_EQ(cluster.nodes[1]->device().transport().role(),
            core::Role::kSecondary);
  EXPECT_EQ(cluster.nodes[2]->device().transport().role(),
            core::Role::kSecondary);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.ReadReg(i, core::kRegTerm), 1u) << "member " << i;
  }

  std::vector<uint8_t> wal = Pattern(8192);
  ASSERT_EQ(host::x_pwrite(cluster.sim, cluster.nodes[0]->client(),
                           wal.data(), wal.size()),
            static_cast<ssize_t>(wal.size()));
  ASSERT_EQ(host::x_fsync(cluster.sim, cluster.nodes[0]->client()), 0);

  // Eager: the fsync ack means every member persisted the bytes.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GE(cluster.nodes[i]->device().cmb().local_credit(), wal.size())
        << "member " << i;
  }
  EXPECT_EQ(cluster.supervisor->promotions(), 0u);
  EXPECT_EQ(cluster.CountLivePrimaries(), 1u);
}

TEST(ReplicaSupervisor, KillPrimaryPromotesExactlyOnce) {
  Cluster cluster(3);
  ASSERT_TRUE(cluster.supervisor->Setup().ok());
  cluster.supervisor->Start();

  std::vector<uint8_t> wal = Pattern(12288);
  ASSERT_EQ(host::x_pwrite(cluster.sim, cluster.nodes[0]->client(),
                           wal.data(), wal.size()),
            static_cast<ssize_t>(wal.size()));
  ASSERT_EQ(host::x_fsync(cluster.sim, cluster.nodes[0]->client()), 0);

  cluster.nodes[0]->device().CrashHard();
  cluster.sim.RunFor(sim::Ms(3));

  EXPECT_EQ(cluster.supervisor->promotions(), 1u);
  EXPECT_EQ(cluster.CountLivePrimaries(), 1u);
  size_t leader = cluster.supervisor->leader_index();
  ASSERT_NE(leader, 0u);
  EXPECT_EQ(cluster.supervisor->term(), 2u);
  EXPECT_EQ(cluster.ReadReg(leader, core::kRegTerm), 2u);

  // Zero acked-byte loss: the promoted log holds every acknowledged byte,
  // bit for bit.
  ASSERT_GE(cluster.nodes[leader]->device().cmb().local_credit(),
            wal.size());
  std::vector<uint8_t> replica(wal.size());
  cluster.nodes[leader]->device().cmb().CopyOut(0, replica.data(),
                                                replica.size());
  EXPECT_EQ(replica, wal);

  // The new primary serves writes; with the remaining secondary fenced in
  // at term 2, eager acks flow again.
  std::vector<uint8_t> more = Pattern(4096, wal.size());
  ASSERT_EQ(host::x_pwrite(cluster.sim, cluster.nodes[leader]->client(),
                           more.data(), more.size()),
            static_cast<ssize_t>(more.size()));
  EXPECT_EQ(host::x_fsync(cluster.sim, cluster.nodes[leader]->client()), 0);
  EXPECT_EQ(cluster.supervisor->promotions(), 1u);  // still exactly once
}

TEST(ReplicaSupervisor, StaleWriterIsFencedByTerm) {
  // Device-level fencing check, no cluster needed: a member whose
  // authorisation is one term old pushes into its intake alias and the
  // write dies at admission, visible in kRegFencedWrites.
  sim::Simulator sim;
  host::StorageNode node(&sim, HaDeviceConfig(3), pcie::FabricConfig{},
                         "fence");
  ASSERT_TRUE(node.Init().ok());

  nvme::Command set_term;
  set_term.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdSetTerm);
  set_term.cdw10 = 2;  // current term
  set_term.cdw11 = 1;  // member slot 1 is the authorised writer
  host::SyncRunner runner(&sim);
  ASSERT_TRUE(runner
                  .Await([&](std::function<void(Status)> done) {
                    node.driver().Admin(
                        set_term,
                        [done = std::move(done)](nvme::Completion cpl) mutable {
                          done(cpl.ok() ? Status::OK()
                                        : Status::IoError("admin failed"));
                        });
                  })
                  .ok());

  const uint64_t ring_bytes = node.device().config().cmb.ring_bytes;
  const uint64_t alias0 =
      host::NodeLayout::kCmbBase + core::kRingWindowOffset + ring_bytes;
  const uint64_t alias1 = alias0 + ring_bytes;
  std::vector<uint8_t> stale(64, 0xEE);

  // Slot 0 last wrote under term 1 (never authorised at 2): fenced.
  ASSERT_TRUE(
      node.fabric().FunctionalWrite(alias0, stale.data(), stale.size()).ok());
  EXPECT_EQ(node.device().transport().fenced_writes(), 1u);
  sim.RunFor(sim::Ms(1));
  EXPECT_EQ(node.device().cmb().local_credit(), 0u);  // nothing admitted

  // Slot 1 holds the current term: admitted, persists normally.
  std::vector<uint8_t> fresh(64, 0x41);
  ASSERT_TRUE(
      node.fabric().FunctionalWrite(alias1, fresh.data(), fresh.size()).ok());
  sim.RunFor(sim::Ms(1));
  EXPECT_EQ(node.device().transport().fenced_writes(), 1u);
  EXPECT_GE(node.device().cmb().local_credit(), fresh.size());

  uint8_t raw[8] = {0};
  ASSERT_TRUE(node.fabric()
                  .FunctionalRead(
                      host::NodeLayout::kCmbBase + core::kRegFencedWrites,
                      raw, 8)
                  .ok());
  uint64_t fenced = 0;
  std::memcpy(&fenced, raw, 8);
  EXPECT_EQ(fenced, 1u);
}

TEST(ReplicaSupervisor, FlapShorterThanSuspicionWindowDoesNotPromote) {
  Cluster cluster(3);
  ASSERT_TRUE(cluster.supervisor->Setup().ok());
  cluster.supervisor->Start();

  // Two 100 µs outbound blackouts on the primary; the suspicion window is
  // 5 × 50 µs = 250 µs, so heartbeats resume before anyone acts.
  fault::FaultPlan plan =
      fault::FaultPlanBuilder("flap")
          .Window(fault::FaultKind::kNtbLinkDown, sim::Us(300), sim::Us(100))
          .Window(fault::FaultKind::kNtbLinkDown, sim::Us(900), sim::Us(100))
          .Build();
  fault::FaultInjector injector(&cluster.sim, plan, 7);
  cluster.nodes[0]->ntb().set_fault_injector(&injector);

  std::vector<uint8_t> wal = Pattern(8192);
  ASSERT_EQ(host::x_pwrite(cluster.sim, cluster.nodes[0]->client(),
                           wal.data(), wal.size()),
            static_cast<ssize_t>(wal.size()));
  cluster.sim.RunFor(sim::Ms(3));

  EXPECT_EQ(cluster.supervisor->promotions(), 0u);
  EXPECT_EQ(cluster.supervisor->removals(), 0u);
  EXPECT_EQ(cluster.supervisor->leader_index(), 0u);
  EXPECT_EQ(cluster.CountLivePrimaries(), 1u);
  // Dropped mirror bytes were healed by retransmit: the log still syncs.
  EXPECT_EQ(host::x_fsync(cluster.sim, cluster.nodes[0]->client()), 0);
}

TEST(ReplicaSupervisor, DeadSecondaryIsRemovedThenRejoinsAfterReboot) {
  Cluster cluster(3);
  ASSERT_TRUE(cluster.supervisor->Setup().ok());
  cluster.supervisor->Start();

  std::vector<uint8_t> wal = Pattern(8192);
  ASSERT_EQ(host::x_pwrite(cluster.sim, cluster.nodes[0]->client(),
                           wal.data(), wal.size()),
            static_cast<ssize_t>(wal.size()));
  ASSERT_EQ(host::x_fsync(cluster.sim, cluster.nodes[0]->client()), 0);

  cluster.nodes[2]->device().CrashHard();
  cluster.sim.RunFor(sim::Ms(2));
  EXPECT_EQ(cluster.supervisor->removals(), 1u);
  EXPECT_EQ(cluster.supervisor->promotions(), 0u);  // leader is fine

  // Eager progress resumes with the surviving secondary alone.
  std::vector<uint8_t> more = Pattern(8192, wal.size());
  ASSERT_EQ(host::x_pwrite(cluster.sim, cluster.nodes[0]->client(),
                           more.data(), more.size()),
            static_cast<ssize_t>(more.size()));
  ASSERT_EQ(host::x_fsync(cluster.sim, cluster.nodes[0]->client()), 0);

  // The member comes back empty (fresh epoch) and is re-admitted; the
  // retransmit path streams the whole log back until it converges.
  cluster.nodes[2]->device().Reboot();
  cluster.sim.RunFor(sim::Ms(5));
  EXPECT_GE(cluster.supervisor->joins(), 1u);
  const uint64_t total = wal.size() + more.size();
  EXPECT_GE(cluster.nodes[2]->device().cmb().local_credit(), total);
  std::vector<uint8_t> replica(total);
  cluster.nodes[2]->device().cmb().CopyOut(0, replica.data(), total);
  std::vector<uint8_t> expect = wal;
  expect.insert(expect.end(), more.begin(), more.end());
  EXPECT_EQ(replica, expect);
}

TEST(ReplicaSupervisor, SetupRejectsUnpreparedDeviceConfigs) {
  sim::Simulator sim;
  core::VillarsConfig plain;  // no intake aliases / retransmit
  plain.geometry.channels = 2;
  plain.geometry.dies_per_channel = 2;
  plain.geometry.blocks_per_plane = 16;
  plain.geometry.pages_per_block = 32;
  plain.destage.ring_lba_count = 64;
  host::StorageNode a(&sim, plain, pcie::FabricConfig{}, "a");
  host::StorageNode b(&sim, plain, pcie::FabricConfig{}, "b");
  ASSERT_TRUE(a.Init().ok());
  ASSERT_TRUE(b.Init().ok());
  ha::ReplicaSupervisor supervisor(&sim, {&a, &b}, ha::HaConfig{});
  Status status = supervisor.Setup();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
      << status.ToString();
}

TEST(ReplicationGroupErrors, SetupRejectsBadProtocol) {
  sim::Simulator sim;
  host::StorageNode primary(&sim, HaDeviceConfig(2), pcie::FabricConfig{},
                            "p");
  host::StorageNode secondary(&sim, HaDeviceConfig(2), pcie::FabricConfig{},
                              "s");
  ASSERT_TRUE(primary.Init().ok());
  ASSERT_TRUE(secondary.Init().ok());
  host::ReplicationGroup group({&primary, &secondary});
  // The device validates the protocol dword and fails the admin command;
  // Setup surfaces it instead of leaving a half-configured group.
  Status status = group.Setup(static_cast<core::ReplicationProtocol>(9),
                              sim::UsF(0.8));
  EXPECT_FALSE(status.ok()) << status.ToString();
}

TEST(ReplicationGroupErrors, SetupFailsWhenPeerDiesMidSetup) {
  sim::Simulator sim;
  host::StorageNode primary(&sim, HaDeviceConfig(2), pcie::FabricConfig{},
                            "p");
  host::StorageNode secondary(&sim, HaDeviceConfig(2), pcie::FabricConfig{},
                              "s");
  ASSERT_TRUE(primary.Init().ok());
  ASSERT_TRUE(secondary.Init().ok());
  // The peer wedges before role assignment: its admin path answers with an
  // internal error (the model of a driver-side timeout), and Setup fails
  // rather than declaring a group containing a dead member.
  secondary.device().CrashHard();
  host::ReplicationGroup group({&primary, &secondary});
  Status status = group.Setup(core::ReplicationProtocol::kEager,
                              sim::UsF(0.8));
  EXPECT_FALSE(status.ok());
}

Status AdminCmd(host::StorageNode& node, nvme::Command cmd) {
  host::SyncRunner runner(&node.simulator());
  return runner.Await([&](std::function<void(Status)> done) {
    node.driver().Admin(cmd,
                        [done = std::move(done)](nvme::Completion cpl) mutable {
                          done(cpl.ok() ? Status::OK()
                                        : Status::IoError("admin failed"));
                        });
  });
}

nvme::Command RoleCmd(core::Role role, uint64_t mailbox = 0) {
  nvme::Command cmd;
  cmd.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdSetRole);
  cmd.cdw10 = static_cast<uint32_t>(role);
  cmd.cdw11 = static_cast<uint32_t>(mailbox);
  cmd.cdw12 = static_cast<uint32_t>(mailbox >> 32);
  return cmd;
}

TEST(ReplicationGroupErrors, DemotionRepromotionRoundTrip) {
  // Manual (supervisor-less) role round trip: p0 -> demoted -> re-promoted,
  // with replication live in both directions along the way.
  sim::Simulator sim;
  host::StorageNode p0(&sim, HaDeviceConfig(2), pcie::FabricConfig{}, "p0");
  host::StorageNode s1(&sim, HaDeviceConfig(2), pcie::FabricConfig{}, "s1");
  ASSERT_TRUE(p0.Init().ok());
  ASSERT_TRUE(s1.Init().ok());
  host::ReplicationGroup group({&p0, &s1});
  ASSERT_TRUE(
      group.Setup(core::ReplicationProtocol::kEager, sim::UsF(0.8)).ok());

  std::vector<uint8_t> wal = Pattern(6000);
  ASSERT_EQ(host::x_pwrite(sim, p0.client(), wal.data(), wal.size()),
            static_cast<ssize_t>(wal.size()));
  ASSERT_EQ(host::x_fsync(sim, p0.client()), 0);

  // Swap roles: s1 leads, p0 follows (shadow mailbox slot 0 on s1).
  const uint64_t window = host::NodeLayout::kNtbBase;  // slot 0, both ways
  ASSERT_TRUE(AdminCmd(p0, RoleCmd(core::Role::kSecondary,
                                   window + core::kRegShadowBase))
                  .ok());
  nvme::Command add;
  add.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdAddPeer);
  add.cdw10 = 0;
  add.cdw11 = static_cast<uint32_t>(window);
  add.cdw12 = static_cast<uint32_t>(window >> 32);
  ASSERT_TRUE(AdminCmd(s1, add).ok());
  ASSERT_TRUE(AdminCmd(s1, RoleCmd(core::Role::kPrimary)).ok());
  ASSERT_TRUE(s1.client().Reconnect().ok());
  EXPECT_EQ(s1.client().written(), wal.size());

  std::vector<uint8_t> second = Pattern(4000, wal.size());
  ASSERT_EQ(host::x_pwrite(sim, s1.client(), second.data(), second.size()),
            static_cast<ssize_t>(second.size()));
  ASSERT_EQ(host::x_fsync(sim, s1.client()), 0);
  EXPECT_GE(p0.device().cmb().local_credit(), wal.size() + second.size());

  // And back again: p0 re-promoted, s1 demoted.
  ASSERT_TRUE(AdminCmd(s1, RoleCmd(core::Role::kSecondary,
                                   window + core::kRegShadowBase))
                  .ok());
  ASSERT_TRUE(AdminCmd(p0, add).ok());  // same slot/window shape both ways
  ASSERT_TRUE(AdminCmd(p0, RoleCmd(core::Role::kPrimary)).ok());
  ASSERT_TRUE(p0.client().Reconnect().ok());
  EXPECT_EQ(p0.client().written(), wal.size() + second.size());

  std::vector<uint8_t> third = Pattern(3000, wal.size() + second.size());
  ASSERT_EQ(host::x_pwrite(sim, p0.client(), third.data(), third.size()),
            static_cast<ssize_t>(third.size()));
  ASSERT_EQ(host::x_fsync(sim, p0.client()), 0);
  EXPECT_GE(s1.device().cmb().local_credit(),
            wal.size() + second.size() + third.size());
  EXPECT_EQ(p0.client().reconnects(), 1u);
  EXPECT_EQ(s1.client().reconnects(), 1u);
}

}  // namespace
}  // namespace xssd
