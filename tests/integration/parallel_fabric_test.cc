// Integration: two storage nodes on separate PCIe fabrics — partitioned
// into separate scheduler domains — replicating over NTB, run under all
// three scheduler backends. The parallel backend drives each fabric on its
// own worker thread, synchronized by the NTB hop-latency lookahead, and
// must reproduce the serial backends' results exactly: bit-identical
// replica contents, the same shadow-counter sequence, the same virtual
// clock, the same event count.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "host/node.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace xssd {
namespace {

using Backend = sim::Simulator::SchedulerBackend;

core::VillarsConfig SmallConfig() {
  core::VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 64;
  return config;
}

struct StreamResult {
  std::vector<uint64_t> shadows;   // primary-side shadow counter sequence
  std::vector<uint8_t> replica;    // secondary CMB image
  uint64_t written = 0;
  uint64_t ntb_wire_bytes = 0;     // secondary -> primary counter traffic
  sim::SimTime final_now = 0;
  uint64_t executed = 0;
  uint64_t windows = 0;
};

StreamResult RunReplicatedStream(Backend backend) {
  sim::Simulator sim(backend);
  sim.ConfigureDomains(2);
  pcie::FabricConfig secondary_fabric;
  secondary_fabric.domain = 1;
  host::StorageNode primary(&sim, SmallConfig(), pcie::FabricConfig{},
                            "pri");
  host::StorageNode secondary(&sim, SmallConfig(), secondary_fabric, "sec");
  EXPECT_TRUE(primary.Init().ok());
  EXPECT_TRUE(secondary.Init().ok());
  host::ReplicationGroup group({&primary, &secondary});
  EXPECT_TRUE(
      group.Setup(core::ReplicationProtocol::kEager, sim::UsF(0.8)).ok());

  StreamResult out;
  // The hook fires from the primary's domain (the shadow write lands on
  // the primary fabric), so recording here is single-threaded.
  primary.device().transport().SetShadowHook(
      [&](uint32_t, uint64_t value) { out.shadows.push_back(value); });

  std::vector<uint8_t> entry(128);
  for (size_t i = 0; i < entry.size(); ++i) {
    entry[i] = static_cast<uint8_t>(i * 7 + 3);
  }
  int remaining = 200;
  std::function<void()> writer = [&]() {
    if (remaining == 0) return;
    --remaining;
    primary.client().Append(entry.data(), entry.size(), [](Status) {});
    sim.Schedule(sim::Us(2), writer);
  };
  {
    sim::Simulator::DomainScope scope(&sim, 0);
    sim.Schedule(0, writer);
  }
  sim.RunFor(sim::Ms(5));

  out.written = primary.client().written();
  out.replica.resize(out.written);
  secondary.device().cmb().CopyOut(0, out.replica.data(),
                                   out.replica.size());
  out.ntb_wire_bytes = secondary.ntb().forwarded_wire_bytes();
  out.final_now = sim.Now();
  out.executed = sim.executed_events();
  out.windows = sim.parallel_windows();
  return out;
}

TEST(ParallelFabricTest, ThreeBackendsProduceIdenticalReplication) {
  StreamResult wheel = RunReplicatedStream(Backend::kWheel);
  StreamResult heap = RunReplicatedStream(Backend::kHeap);
  StreamResult par = RunReplicatedStream(Backend::kParallel);

  ASSERT_EQ(wheel.written, 200u * 128u);
  ASSERT_FALSE(wheel.shadows.empty());

  for (const StreamResult* other : {&heap, &par}) {
    EXPECT_EQ(wheel.written, other->written);
    EXPECT_EQ(wheel.final_now, other->final_now);
    EXPECT_EQ(wheel.executed, other->executed);
    EXPECT_EQ(wheel.ntb_wire_bytes, other->ntb_wire_bytes);
    ASSERT_EQ(wheel.shadows, other->shadows);
    ASSERT_EQ(wheel.replica, other->replica);
  }
  // The serial backends never open lockstep windows; the parallel backend
  // must actually have engaged its workers for this comparison to mean
  // anything.
  EXPECT_EQ(wheel.windows, 0u);
  EXPECT_GT(par.windows, 0u);
}

TEST(ParallelFabricTest, DomainGuardAcceptsPartitionedTraffic) {
  // The fabric domain guard (traffic may only enter a fabric from its own
  // domain) must stay silent for a correctly partitioned topology even
  // under sustained cross-NTB load — the test passing at all is the
  // assertion, plus the replica must be bit-exact.
  StreamResult par = RunReplicatedStream(Backend::kParallel);
  std::vector<uint8_t> expect(par.written);
  for (size_t i = 0; i < expect.size(); ++i) {
    expect[i] = static_cast<uint8_t>((i % 128) * 7 + 3);
  }
  EXPECT_EQ(par.replica, expect);
}

}  // namespace
}  // namespace xssd
