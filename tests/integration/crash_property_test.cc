// Property sweep: crash the device at random points during a random
// append workload; the recovered log must (a) cover every acknowledged
// byte, (b) be byte-exact, (c) never span a gap (paper §4.1).

#include <gtest/gtest.h>

#include <cstring>

#include "host/node.h"
#include "host/recovery.h"
#include "sim/random.h"

namespace xssd {
namespace {

core::VillarsConfig SmallConfig() {
  core::VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 64;
  return config;
}

class CrashPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashPropertyTest, RecoveryCoversAcknowledgedPrefix) {
  sim::Rng rng(GetParam());
  sim::Simulator sim;
  host::StorageNode node(&sim, SmallConfig(), pcie::FabricConfig{}, "crash");
  ASSERT_TRUE(node.Init().ok());

  // Random reference stream, appended in random-sized records.
  const size_t total = 30000 + rng.Uniform(60000);
  std::vector<uint8_t> stream(total);
  for (auto& b : stream) b = static_cast<uint8_t>(rng.Next());

  size_t submitted = 0;
  std::function<void()> append_next = [&]() {
    size_t chunk =
        std::min<size_t>(32 + rng.Uniform(700), stream.size() - submitted);
    if (chunk == 0) return;
    node.client().Append(stream.data() + submitted, chunk,
                         [&](Status) { append_next(); });
    submitted += chunk;
  };
  append_next();

  // Crash at a random instant while the stream is in flight.
  sim.RunFor(sim::Us(10 + rng.Uniform(300)));
  uint64_t acknowledged = node.device().cmb().local_credit();

  bool destaged = false;
  node.device().PowerFail([&]() { destaged = true; });
  bool finished = sim.RunWhile([&]() { return destaged; });
  if (!finished) sim.Run();
  ASSERT_TRUE(destaged);

  node.device().Reboot();
  Result<host::RecoveredLog> recovered = host::RecoverLog(
      sim, node.driver(), node.device().destage().ring_start_lba(),
      node.device().destage().ring_lba_count());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // (a) nothing acknowledged is lost.
  EXPECT_GE(recovered->end_offset(), acknowledged)
      << "acknowledged bytes lost (seed " << GetParam() << ")";
  // (b) bytes are exact.
  ASSERT_LE(recovered->end_offset(), stream.size());
  EXPECT_EQ(std::memcmp(recovered->data.data(),
                        stream.data() + recovered->start_offset,
                        recovered->data.size()),
            0)
      << "recovered bytes differ (seed " << GetParam() << ")";
  // (c) the run is contiguous by construction of RecoveredLog; end never
  // exceeds what was submitted.
  EXPECT_LE(recovered->end_offset(), submitted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));

/// A crash with an out-of-order hole: bytes after the gap must never be
/// recovered as part of the contiguous run.
TEST(CrashGapTest, DestageStopsAtGap) {
  sim::Simulator sim;
  host::StorageNode node(&sim, SmallConfig(), pcie::FabricConfig{}, "gap");
  ASSERT_TRUE(node.Init().ok());

  // Write [0, 1000) and [1500, 2500) directly (advanced API-style OOO),
  // leaving a hole at [1000, 1500).
  Result<uint64_t> area = node.client().XAlloc(4000);
  ASSERT_TRUE(area.ok());
  std::vector<uint8_t> low(1000, 0xAA), high(1000, 0xBB);
  node.client().WriteAt(0, low.data(), low.size(), [](Status) {});
  node.client().WriteAt(1500, high.data(), high.size(), [](Status) {});
  sim.RunFor(sim::Ms(1));

  EXPECT_EQ(node.device().cmb().local_credit(), 1000u);  // stops at hole
  ASSERT_TRUE(node.client().XFree(*area).ok());  // lift the barrier
  sim.RunFor(sim::Us(10));

  bool destaged = false;
  node.device().PowerFail([&]() { destaged = true; });
  sim.RunWhile([&]() { return destaged; });

  node.device().Reboot();
  Result<host::RecoveredLog> recovered = host::RecoverLog(
      sim, node.driver(), node.device().destage().ring_start_lba(),
      node.device().destage().ring_lba_count());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->start_offset, 0u);
  EXPECT_EQ(recovered->end_offset(), 1000u);  // never across the gap
  EXPECT_EQ(recovered->data, low);
}

}  // namespace
}  // namespace xssd
