// Integration: replication across simulated hosts over NTB, configured
// purely through public interfaces (NTB windows + vendor admin commands).

#include <gtest/gtest.h>

#include "host/node.h"
#include "host/sync.h"
#include "host/xcalls.h"
#include "sim/random.h"

namespace xssd {
namespace {

core::VillarsConfig SmallConfig() {
  core::VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 64;
  return config;
}

class ReplicationTest : public ::testing::Test {
 protected:
  void MakeNodes(size_t count) {
    for (size_t i = 0; i < count; ++i) {
      nodes_.push_back(std::make_unique<host::StorageNode>(
          &sim_, SmallConfig(), pcie::FabricConfig{},
          "node" + std::to_string(i)));
      ASSERT_TRUE(nodes_.back()->Init().ok());
    }
  }

  Status SetupGroup(core::ReplicationProtocol protocol) {
    std::vector<host::StorageNode*> raw;
    for (auto& node : nodes_) raw.push_back(node.get());
    host::ReplicationGroup group(raw);
    return group.Setup(protocol, sim::UsF(0.8));
  }

  host::StorageNode& node(size_t i) { return *nodes_[i]; }

  sim::Simulator sim_;
  std::vector<std::unique_ptr<host::StorageNode>> nodes_;
};

TEST_F(ReplicationTest, EagerFsyncImpliesAllSecondariesPersisted) {
  MakeNodes(3);
  ASSERT_TRUE(SetupGroup(core::ReplicationProtocol::kEager).ok());

  sim::Rng rng(3);
  std::vector<uint8_t> wal(20000);
  for (auto& b : wal) b = static_cast<uint8_t>(rng.Next());

  ASSERT_EQ(host::x_pwrite(sim_, node(0).client(), wal.data(), wal.size()),
            static_cast<ssize_t>(wal.size()));
  ASSERT_EQ(host::x_fsync(sim_, node(0).client()), 0);

  // The eager guarantee: at fsync return, every secondary's PM holds every
  // byte, bit-exact.
  for (size_t i = 1; i < 3; ++i) {
    EXPECT_GE(node(i).device().cmb().local_credit(), wal.size());
    std::vector<uint8_t> replica(wal.size());
    node(i).device().cmb().CopyOut(0, replica.data(), replica.size());
    EXPECT_EQ(replica, wal) << "secondary " << i;
  }
}

TEST_F(ReplicationTest, EagerCreditGatedBySlowestSecondary) {
  MakeNodes(3);
  ASSERT_TRUE(SetupGroup(core::ReplicationProtocol::kEager).ok());
  // Make secondary 2 very slow to report.
  node(2).device().transport().set_update_period(sim::Ms(5));

  std::vector<uint8_t> data(4000, 0x21);
  ASSERT_EQ(host::x_pwrite(sim_, node(0).client(), data.data(), data.size()),
            4000);
  sim_.RunFor(sim::Us(200));
  // Local + fast secondary are done, but the visible credit still lags.
  EXPECT_GE(node(0).device().cmb().local_credit(), 4000u);
  EXPECT_LT(node(0).device().EffectiveCredit(), 4000u);
  sim_.RunFor(sim::Ms(10));  // slow reporter finally updates
  EXPECT_GE(node(0).device().EffectiveCredit(), 4000u);
}

TEST_F(ReplicationTest, LazyDoesNotWaitForSecondaries) {
  MakeNodes(2);
  ASSERT_TRUE(SetupGroup(core::ReplicationProtocol::kLazy).ok());
  node(1).device().transport().set_update_period(sim::Ms(100));  // mute

  std::vector<uint8_t> data(2000, 0x42);
  sim::SimTime start = sim_.Now();
  ASSERT_EQ(host::x_pwrite(sim_, node(0).client(), data.data(), data.size()),
            2000);
  ASSERT_EQ(host::x_fsync(sim_, node(0).client()), 0);
  // Lazy fsync returns on local persistence — far faster than the muted
  // secondary could ever report.
  EXPECT_LT(sim_.Now() - start, sim::Ms(50));
  // And the data still flows to the secondary eventually (mirrored).
  sim_.RunFor(sim::Ms(1));
  EXPECT_GE(node(1).device().cmb().local_credit(), 2000u);
}

TEST_F(ReplicationTest, ChainGatesOnTailOnly) {
  MakeNodes(3);
  ASSERT_TRUE(SetupGroup(core::ReplicationProtocol::kChain).ok());
  // Slow down the *first* secondary; the tail (second) stays fast.
  node(1).device().transport().set_update_period(sim::Ms(50));

  std::vector<uint8_t> data(1000, 0x07);
  sim::SimTime start = sim_.Now();
  ASSERT_EQ(host::x_pwrite(sim_, node(0).client(), data.data(), data.size()),
            1000);
  ASSERT_EQ(host::x_fsync(sim_, node(0).client()), 0);
  EXPECT_LT(sim_.Now() - start, sim::Ms(25));  // tail gating only
}

TEST_F(ReplicationTest, SecondaryTailReadSeesShippedLog) {
  MakeNodes(2);
  ASSERT_TRUE(SetupGroup(core::ReplicationProtocol::kEager).ok());

  std::vector<uint8_t> wal(5000);
  for (size_t i = 0; i < wal.size(); ++i) wal[i] = static_cast<uint8_t>(i);
  ASSERT_EQ(host::x_pwrite(sim_, node(0).client(), wal.data(), wal.size()),
            5000);
  ASSERT_EQ(host::x_fsync(sim_, node(0).client()), 0);

  // The standby reads the shipped log off its own conventional side
  // (Figure 1 right, step 3).
  std::vector<uint8_t> replayed(wal.size());
  ASSERT_EQ(host::x_pread(sim_, node(1).client(), node(1).driver(),
                          replayed.data(), replayed.size()),
            static_cast<ssize_t>(wal.size()));
  EXPECT_EQ(replayed, wal);
}

TEST_F(ReplicationTest, ShadowCountersVisibleInPrimaryRegisters) {
  MakeNodes(2);
  ASSERT_TRUE(SetupGroup(core::ReplicationProtocol::kEager).ok());
  std::vector<uint8_t> data(3000, 0x69);
  host::x_pwrite(sim_, node(0).client(), data.data(), data.size());
  host::x_fsync(sim_, node(0).client());
  EXPECT_GE(node(0).device().transport().shadow_counter(0), 3000u);
}

TEST_F(ReplicationTest, StalledSecondaryRaisesStatusBit) {
  core::VillarsConfig config = SmallConfig();
  config.transport.stall_timeout = sim::Ms(2);
  nodes_.push_back(std::make_unique<host::StorageNode>(
      &sim_, config, pcie::FabricConfig{}, "p"));
  nodes_.push_back(std::make_unique<host::StorageNode>(
      &sim_, config, pcie::FabricConfig{}, "s"));
  ASSERT_TRUE(nodes_[0]->Init().ok());
  ASSERT_TRUE(nodes_[1]->Init().ok());
  ASSERT_TRUE(SetupGroup(core::ReplicationProtocol::kEager).ok());

  // Kill the secondary entirely: mirrors arrive but it never reports.
  node(1).device().PowerFail([]() {});
  sim_.RunFor(sim::Ms(1));

  std::vector<uint8_t> data(500, 1);
  node(0).client().Append(data.data(), data.size(), [](Status) {});
  sim_.RunFor(sim::Ms(10));

  uint64_t word = node(0).device().transport().StatusWord(
      node(0).device().cmb().local_credit());
  EXPECT_NE(word & core::StatusBits::kReplicationStalled, 0u);
}

}  // namespace
}  // namespace xssd
