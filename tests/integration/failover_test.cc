// Integration: failover and device-lifetime scenarios — promotion by admin
// command after a primary loss (§7.1), and recovery across multiple
// crash/reboot epochs.

#include <gtest/gtest.h>

#include <cstring>

#include "host/node.h"
#include "host/recovery.h"
#include "host/sync.h"
#include "host/xcalls.h"

namespace xssd {
namespace {

core::VillarsConfig SmallConfig() {
  core::VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 64;
  return config;
}

Status AdminSetRole(host::StorageNode& node, core::Role role) {
  nvme::Command cmd;
  cmd.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdSetRole);
  cmd.cdw10 = static_cast<uint32_t>(role);
  host::SyncRunner runner(&node.simulator());
  return runner.Await([&](std::function<void(Status)> done) {
    node.driver().Admin(cmd, [done = std::move(done)](
                                 nvme::Completion cpl) mutable {
      done(cpl.ok() ? Status::OK() : Status::IoError("admin failed"));
    });
  });
}

TEST(Failover, SecondaryPromotesAndServesWrites) {
  sim::Simulator sim;
  host::StorageNode primary(&sim, SmallConfig(), pcie::FabricConfig{}, "p");
  host::StorageNode secondary(&sim, SmallConfig(), pcie::FabricConfig{},
                              "s");
  ASSERT_TRUE(primary.Init().ok());
  ASSERT_TRUE(secondary.Init().ok());
  host::ReplicationGroup group({&primary, &secondary});
  ASSERT_TRUE(
      group.Setup(core::ReplicationProtocol::kEager, sim::UsF(0.8)).ok());

  // Ship a WAL, then lose the primary.
  std::vector<uint8_t> wal(6000);
  for (size_t i = 0; i < wal.size(); ++i) wal[i] = static_cast<uint8_t>(i);
  ASSERT_EQ(host::x_pwrite(sim, primary.client(), wal.data(), wal.size()),
            static_cast<ssize_t>(wal.size()));
  ASSERT_EQ(host::x_fsync(sim, primary.client()), 0);

  primary.device().PowerFail([]() {});
  sim.RunFor(sim::Ms(5));

  // The standby has the full log locally; promote it (§7.1: promotion is
  // the database's decision, done via the admin interface).
  std::vector<uint8_t> replica(wal.size());
  secondary.device().cmb().CopyOut(0, replica.data(), replica.size());
  EXPECT_EQ(replica, wal);
  ASSERT_TRUE(AdminSetRole(secondary, core::Role::kPrimary).ok());
  EXPECT_EQ(secondary.device().transport().role(), core::Role::kPrimary);

  // The new primary's client adopts the replicated tail, then accepts and
  // persists new writes (no peers configured, so its credit is local).
  ASSERT_TRUE(secondary.client().ResumeAtDeviceTail().ok());
  EXPECT_EQ(secondary.client().written(), wal.size());
  std::vector<uint8_t> more(800, 0x44);
  ASSERT_EQ(host::x_pwrite(sim, secondary.client(), more.data(),
                           more.size()),
            800);
  ASSERT_EQ(host::x_fsync(sim, secondary.client()), 0);
  EXPECT_GE(secondary.device().cmb().local_credit(), wal.size() + 800);
}

TEST(Failover, DemotionBackToSecondaryStopsLocalCommitAuthority) {
  sim::Simulator sim;
  host::StorageNode node(&sim, SmallConfig(), pcie::FabricConfig{}, "n");
  ASSERT_TRUE(node.Init().ok());
  ASSERT_TRUE(AdminSetRole(node, core::Role::kPrimary).ok());
  ASSERT_TRUE(AdminSetRole(node, core::Role::kSecondary).ok());
  EXPECT_EQ(node.device().transport().role(), core::Role::kSecondary);
  ASSERT_TRUE(AdminSetRole(node, core::Role::kStandalone).ok());
  EXPECT_EQ(node.device().transport().role(), core::Role::kStandalone);
}

TEST(MultiEpoch, RecoveryPicksNewestEpoch) {
  sim::Simulator sim;
  host::StorageNode node(&sim, SmallConfig(), pcie::FabricConfig{}, "n");
  ASSERT_TRUE(node.Init().ok());

  // Epoch 0: write and crash.
  std::vector<uint8_t> old_wal(3000, 0x0A);
  ASSERT_EQ(host::x_pwrite(sim, node.client(), old_wal.data(),
                           old_wal.size()),
            3000);
  ASSERT_EQ(host::x_fsync(sim, node.client()), 0);
  bool destaged = false;
  node.device().PowerFail([&]() { destaged = true; });
  sim.RunWhile([&]() { return destaged; });
  node.device().Reboot();
  ASSERT_EQ(node.device().epoch(), 1u);

  // Epoch 1: a fresh client writes a new log; crash again.
  host::XLogClient fresh(&sim, &node.fabric(), host::NodeLayout::kCmbBase);
  ASSERT_TRUE(fresh.Setup().ok());
  std::vector<uint8_t> new_wal(2000, 0x1B);
  {
    host::SyncRunner runner(&sim);
    ASSERT_TRUE(runner
                    .Await([&](std::function<void(Status)> done) {
                      fresh.AppendDurable(new_wal.data(), new_wal.size(),
                                          std::move(done));
                    })
                    .ok());
  }
  destaged = false;
  node.device().PowerFail([&]() { destaged = true; });
  sim.RunWhile([&]() { return destaged; });
  node.device().Reboot();
  ASSERT_EQ(node.device().epoch(), 2u);

  // Recovery returns the *newest* epoch's stream only.
  Result<host::RecoveredLog> recovered = host::RecoverLog(
      sim, node.driver(), node.device().destage().ring_start_lba(),
      node.device().destage().ring_lba_count());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->epoch, 1u);  // the epoch that wrote the newest pages
  EXPECT_EQ(recovered->start_offset, 0u);
  EXPECT_EQ(recovered->data.size(), new_wal.size());
  EXPECT_EQ(recovered->data, new_wal);
}

TEST(MultiEpoch, HaltedDeviceRejectsTrafficUntilReboot) {
  sim::Simulator sim;
  host::StorageNode node(&sim, SmallConfig(), pcie::FabricConfig{}, "n");
  ASSERT_TRUE(node.Init().ok());

  bool destaged = false;
  node.device().PowerFail([&]() { destaged = true; });
  sim.RunWhile([&]() { return destaged; });

  std::vector<uint8_t> data(100, 1);
  node.client().Append(data.data(), data.size(), [](Status) {});
  sim.RunFor(sim::Ms(1));
  EXPECT_EQ(node.device().cmb().local_credit(), 0u);  // dropped

  node.device().Reboot();
  host::XLogClient fresh(&sim, &node.fabric(), host::NodeLayout::kCmbBase);
  ASSERT_TRUE(fresh.Setup().ok());
  host::SyncRunner runner(&sim);
  ASSERT_TRUE(runner
                  .Await([&](std::function<void(Status)> done) {
                    fresh.AppendDurable(data.data(), data.size(),
                                        std::move(done));
                  })
                  .ok());
  EXPECT_EQ(node.device().cmb().local_credit(), 100u);
}

}  // namespace
}  // namespace xssd
