// End-to-end: the mini database runs TPC-C with its WAL on a Villars
// device; the full log is then read back from the device's conventional
// side and replayed into a fresh database, which must reach the identical
// state. This exercises every layer at once: DB → group commit →
// x_pwrite/x_fsync → CMB → destage → FTL → flash → NVMe reads.

#include <gtest/gtest.h>

#include <cstring>

#include "db/log_backend.h"
#include "db/log_manager.h"
#include "db/tpcc.h"
#include "db/workload.h"
#include "host/node.h"
#include "host/xcalls.h"

namespace xssd {
namespace {

core::VillarsConfig DeviceConfig() {
  core::VillarsConfig config;
  config.geometry.blocks_per_plane = 32;
  config.geometry.pages_per_block = 64;
  config.destage.ring_lba_count = 2048;
  return config;
}

db::TpccConfig SmallTpcc() {
  db::TpccConfig config;
  config.warehouses = 2;
  config.populated_customers_per_district = 16;
  config.populated_items = 128;
  return config;
}

void ApplyRecord(db::Database* db, const db::LogRecord& record) {
  db::Table* table = db->GetTable(record.table_id);
  if (table == nullptr) return;
  switch (record.op) {
    case db::LogOp::kInsert:
      table->Put(record.key, record.payload);
      break;
    case db::LogOp::kUpdate: {
      uint32_t offset = 0;
      std::memcpy(&offset, record.payload.data(), 4);
      std::vector<uint8_t> delta(record.payload.begin() + 4,
                                 record.payload.end());
      table->ApplyDelta(record.key, offset, delta);
      break;
    }
    case db::LogOp::kDelete:
      table->Erase(record.key);
      break;
    case db::LogOp::kCommit:
      break;
  }
}

bool TablesEqual(db::Table* a, db::Table* b, uint64_t key_limit) {
  for (uint64_t key = 0; key < key_limit; ++key) {
    const auto* ra = a->Get(key);
    const auto* rb = b->Get(key);
    if ((ra == nullptr) != (rb == nullptr)) return false;
    if (ra != nullptr && *ra != *rb) return false;
  }
  return true;
}

TEST(EndToEnd, TpccWalThroughVillarsReplaysToIdenticalState) {
  sim::Simulator sim;
  host::StorageNode node(&sim, DeviceConfig(), pcie::FabricConfig{}, "e2e");
  ASSERT_TRUE(node.Init().ok());

  db::VillarsLogBackend backend(&node.client());
  db::LogManager log(&sim, &backend);
  db::Database source(&log);
  db::TpccWorkload workload(&source, SmallTpcc(), 99);
  workload.Populate();

  db::WorkloadDriver driver(&sim, &source, &workload, 4);
  db::WorkloadResult result = driver.Run(sim::Ms(5), sim::Ms(40));
  ASSERT_GT(result.committed_txns, 500u);

  // Sync and pull the entire durable log back off the conventional side.
  ASSERT_EQ(host::x_fsync(sim, node.client()), 0);
  uint64_t durable = log.durable_lsn();
  ASSERT_GT(durable, 0u);
  std::vector<uint8_t> wal(durable);
  ASSERT_EQ(host::x_pread(sim, node.client(), node.driver(), wal.data(),
                          wal.size()),
            static_cast<ssize_t>(wal.size()));

  // Replay into a fresh database with the same schema (but no activity).
  bool torn = false;
  auto records = db::ParseLogStream(wal, &torn);
  EXPECT_FALSE(torn);
  ASSERT_GT(records.size(), 1000u);

  sim::Simulator sim2;
  db::NoLogBackend null_backend(&sim2);
  db::LogManager null_log(&sim2, &null_backend);
  db::Database replica(&null_log);
  db::TpccWorkload replica_schema(&replica, SmallTpcc(), 99);
  replica_schema.Populate();  // same seed => same initial rows
  for (const auto& record : records) ApplyRecord(&replica, record);

  // Compare the mutable tables row-by-row over their key spaces.
  EXPECT_TRUE(TablesEqual(workload.district(), replica_schema.district(),
                          2 * 100 + 100));
  EXPECT_TRUE(TablesEqual(workload.orders(), replica_schema.orders(),
                          workload.next_order_id()));
  EXPECT_TRUE(TablesEqual(workload.new_order(), replica_schema.new_order(),
                          workload.next_order_id()));
  // Order lines: spot-check a window.
  EXPECT_TRUE(TablesEqual(workload.order_line(), replica_schema.order_line(),
                          workload.next_order_id() * 16));
  EXPECT_EQ(workload.history()->row_count(),
            replica_schema.history()->row_count());
}

TEST(EndToEnd, DualWorkloadSharesOneDevice) {
  // The paper's headline usability claim: the same device serves the log
  // on the fast side and regular block I/O on the conventional side,
  // concurrently, without either corrupting the other.
  sim::Simulator sim;
  host::StorageNode node(&sim, DeviceConfig(), pcie::FabricConfig{}, "dual");
  ASSERT_TRUE(node.Init().ok());

  // Block workload in a region above the destage ring.
  uint32_t block = node.driver().block_bytes();
  std::vector<uint8_t> block_data(block);
  for (size_t i = 0; i < block_data.size(); ++i) {
    block_data[i] = static_cast<uint8_t>(i * 3);
  }
  int block_writes_done = 0;
  for (int i = 0; i < 20; ++i) {
    node.driver().Write(4096 + i, block_data.data(), 1,
                        [&](Status s) {
                          ASSERT_TRUE(s.ok());
                          ++block_writes_done;
                        });
  }

  // Log workload on the fast side, interleaved.
  std::vector<uint8_t> wal(40000);
  for (size_t i = 0; i < wal.size(); ++i) wal[i] = static_cast<uint8_t>(i);
  ASSERT_EQ(host::x_pwrite(sim, node.client(), wal.data(), wal.size()),
            static_cast<ssize_t>(wal.size()));
  ASSERT_EQ(host::x_fsync(sim, node.client()), 0);
  sim.Run();
  EXPECT_EQ(block_writes_done, 20);

  // Both data sets intact.
  std::vector<uint8_t> wal_back(wal.size());
  ASSERT_EQ(host::x_pread(sim, node.client(), node.driver(), wal_back.data(),
                          wal_back.size()),
            static_cast<ssize_t>(wal.size()));
  EXPECT_EQ(wal_back, wal);
  for (int i = 0; i < 20; ++i) {
    bool checked = false;
    node.driver().Read(4096 + i, 1,
                       [&](Status s, std::vector<uint8_t> data) {
                         ASSERT_TRUE(s.ok());
                         EXPECT_EQ(data, block_data);
                         checked = true;
                       });
    sim.RunWhile([&]() { return checked; });
  }
}

}  // namespace
}  // namespace xssd
