#include "ntb/ntb.h"

#include <gtest/gtest.h>

#include <cstring>

#include "host/node.h"
#include "host/xcalls.h"

namespace xssd::ntb {
namespace {

/// Records MMIO traffic on a remote fabric.
class SinkDevice : public pcie::MmioDevice {
 public:
  explicit SinkDevice(size_t size) : memory(size, 0) {}
  void OnMmioWrite(uint64_t offset, const uint8_t* data,
                   size_t len) override {
    std::memcpy(memory.data() + offset, data, len);
    ++writes;
  }
  void OnMmioRead(uint64_t offset, uint8_t* out, size_t len) override {
    std::memcpy(out, memory.data() + offset, len);
  }
  std::vector<uint8_t> memory;
  int writes = 0;
};

class NtbTest : public ::testing::Test {
 protected:
  NtbTest()
      : local_(&sim_, pcie::FabricConfig{}, "local"),
        remote_(&sim_, pcie::FabricConfig{}, "remote"),
        adapter_(&sim_, &local_, NtbConfig{}, "ntb"),
        sink_(8192) {
    EXPECT_TRUE(local_.AddMmioRegion(0x1000, 4096, &adapter_, "win").ok());
    EXPECT_TRUE(remote_.AddMmioRegion(0x9000, 8192, &sink_, "sink").ok());
  }

  sim::Simulator sim_;
  pcie::PcieFabric local_;
  pcie::PcieFabric remote_;
  NtbAdapter adapter_;
  SinkDevice sink_;
};

TEST_F(NtbTest, ForwardsWritesWithAddressTranslation) {
  ASSERT_TRUE(adapter_.AddWindow(0, 4096, &remote_, 0x9000).ok());
  uint8_t data[32];
  for (int i = 0; i < 32; ++i) data[i] = static_cast<uint8_t>(i + 1);
  local_.HostWrite(0x1000 + 100, data, 32, 64);
  sim_.Run();
  EXPECT_EQ(sink_.writes, 1);
  EXPECT_EQ(std::memcmp(sink_.memory.data() + 100, data, 32), 0);
}

TEST_F(NtbTest, CrossLinkAddsLatency) {
  ASSERT_TRUE(adapter_.AddWindow(0, 4096, &remote_, 0x9000).ok());
  uint8_t byte = 0x5A;
  local_.HostWrite(0x1000, &byte, 1, 64);
  sim_.Run();
  // Local link + NTB cable + hop latency + remote fabric: >= 1.3 us hop.
  EXPECT_GE(sim_.Now(), NtbConfig{}.hop_latency);
}

TEST_F(NtbTest, WireAccountingCountsOverheadPerChunk) {
  ASSERT_TRUE(adapter_.AddWindow(0, 4096, &remote_, 0x9000).ok());
  uint8_t data[128] = {0};
  local_.HostWrite(0x1000, data, 128, 64);
  sim_.Run();
  EXPECT_EQ(adapter_.forwarded_payload_bytes(), 128u);
  EXPECT_EQ(adapter_.forwarded_packets(), 2u);
  EXPECT_EQ(adapter_.forwarded_wire_bytes(),
            128 + 2 * pcie::kTlpOverheadBytes);
}

TEST_F(NtbTest, OverlappingWindowsRejected) {
  ASSERT_TRUE(adapter_.AddWindow(0, 1024, &remote_, 0x9000).ok());
  EXPECT_FALSE(adapter_.AddWindow(512, 1024, &remote_, 0x9000).ok());
  EXPECT_TRUE(adapter_.AddWindow(1024, 1024, &remote_, 0x9000).ok());
}

TEST_F(NtbTest, ReadsServedFromRemoteFunctionally) {
  ASSERT_TRUE(adapter_.AddWindow(0, 4096, &remote_, 0x9000).ok());
  sink_.memory[5] = 0xEE;
  std::vector<uint8_t> got;
  local_.HostRead(0x1005, 1,
                  [&](std::vector<uint8_t> data) { got = std::move(data); });
  sim_.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 0xEE);
}

TEST_F(NtbTest, MulticastFansOutWithOneCableTransfer) {
  sim::Simulator sim2;
  pcie::PcieFabric remote2(&sim_, pcie::FabricConfig{}, "remote2");
  SinkDevice sink2(8192);
  ASSERT_TRUE(remote2.AddMmioRegion(0x9000, 8192, &sink2, "sink2").ok());

  ASSERT_TRUE(adapter_
                  .AddMulticastWindow(
                      0, 4096,
                      {NtbAdapter::MulticastTarget{&remote_, 0x9000},
                       NtbAdapter::MulticastTarget{&remote2, 0x9000}})
                  .ok());
  uint8_t data[64];
  for (int i = 0; i < 64; ++i) data[i] = static_cast<uint8_t>(i ^ 0xA5);
  local_.HostWrite(0x1000 + 8, data, 64, 64);
  sim_.Run();

  // Both members received the bytes...
  EXPECT_EQ(std::memcmp(sink_.memory.data() + 8, data, 64), 0);
  EXPECT_EQ(std::memcmp(sink2.memory.data() + 8, data, 64), 0);
  // ...for a single transfer's worth of cable bytes.
  EXPECT_EQ(adapter_.forwarded_payload_bytes(), 64u);
}

TEST_F(NtbTest, MulticastValidation) {
  EXPECT_FALSE(adapter_.AddMulticastWindow(0, 4096, {}).ok());
  EXPECT_FALSE(adapter_
                   .AddMulticastWindow(
                       0, 4096, {NtbAdapter::MulticastTarget{nullptr, 0}})
                   .ok());
}

TEST(NtbReplication, MulticastMirroringSavesPrimaryBandwidth) {
  // Two full replication groups (1 primary + 2 secondaries each), one with
  // per-peer flows and one with a multicast window; same workload. The
  // multicast primary must push half the cable bytes.
  auto run = [](bool multicast) -> uint64_t {
    sim::Simulator sim;
    core::VillarsConfig config;
    config.geometry.channels = 2;
    config.geometry.dies_per_channel = 2;
    config.geometry.blocks_per_plane = 16;
    config.geometry.pages_per_block = 32;
    config.destage.ring_lba_count = 64;
    host::StorageNode primary(&sim, config, pcie::FabricConfig{}, "p");
    host::StorageNode s1(&sim, config, pcie::FabricConfig{}, "s1");
    host::StorageNode s2(&sim, config, pcie::FabricConfig{}, "s2");
    EXPECT_TRUE(primary.Init().ok());
    EXPECT_TRUE(s1.Init().ok());
    EXPECT_TRUE(s2.Init().ok());
    host::ReplicationGroup group({&primary, &s1, &s2});
    EXPECT_TRUE(
        group.Setup(core::ReplicationProtocol::kEager, sim::UsF(0.8)).ok());
    if (multicast) {
      Result<uint64_t> window =
          primary.ConnectMulticastWindowTo(6, {&s1, &s2});
      EXPECT_TRUE(window.ok());
      primary.device().transport().EnableMulticast(*window);
    }
    std::vector<uint8_t> wal(8000, 0x5C);
    EXPECT_EQ(host::x_pwrite(sim, primary.client(), wal.data(), wal.size()),
              8000);
    EXPECT_EQ(host::x_fsync(sim, primary.client()), 0);
    // Both secondaries must hold the bytes either way.
    EXPECT_GE(s1.device().cmb().local_credit(), 8000u);
    EXPECT_GE(s2.device().cmb().local_credit(), 8000u);
    return primary.ntb().forwarded_payload_bytes();
  };

  uint64_t unicast_bytes = run(false);
  uint64_t multicast_bytes = run(true);
  EXPECT_EQ(unicast_bytes, 2 * multicast_bytes);
}

}  // namespace
}  // namespace xssd::ntb
