#include "db/tpcc.h"

#include <gtest/gtest.h>

#include "db/log_backend.h"
#include "db/workload.h"

namespace xssd::db {
namespace {

class TpccTest : public ::testing::Test {
 protected:
  TpccTest()
      : backend_(&sim_),
        log_(&sim_, &backend_),
        db_(&log_),
        workload_(&db_, SmallTpcc(), 42) {
    workload_.Populate();
  }

  static TpccConfig SmallTpcc() {
    TpccConfig config;
    config.warehouses = 2;
    config.populated_customers_per_district = 16;
    config.populated_items = 128;
    return config;
  }

  sim::Simulator sim_;
  NoLogBackend backend_;
  LogManager log_;
  Database db_;
  TpccWorkload workload_;
};

TEST_F(TpccTest, PopulationCountsMatchConfig) {
  EXPECT_EQ(workload_.warehouse()->row_count(), 2u);
  EXPECT_EQ(workload_.district()->row_count(), 2u * 10);
  EXPECT_EQ(workload_.customer()->row_count(), 2u * 10 * 16);
  EXPECT_EQ(workload_.item()->row_count(), 128u);
  EXPECT_EQ(workload_.stock()->row_count(), 2u * 128);
  EXPECT_EQ(workload_.orders()->row_count(), 0u);
}

TEST_F(TpccTest, MixApproximatesSpec) {
  int counts[5] = {0};
  for (int i = 0; i < 20000; ++i) {
    counts[static_cast<int>(workload_.NextType())]++;
  }
  EXPECT_NEAR(counts[0] / 20000.0, 0.45, 0.02);  // new-order
  EXPECT_NEAR(counts[1] / 20000.0, 0.43, 0.02);  // payment
  EXPECT_NEAR(counts[2] / 20000.0, 0.04, 0.01);
  EXPECT_NEAR(counts[3] / 20000.0, 0.04, 0.01);
  EXPECT_NEAR(counts[4] / 20000.0, 0.04, 0.01);
}

TEST_F(TpccTest, NewOrderInsertsOrderRows) {
  Transaction txn(&db_);
  sim::SimTime cpu = workload_.Prepare(TpccTxnType::kNewOrder, &txn);
  EXPECT_GT(cpu, 0u);
  EXPECT_GE(txn.write_count(), 1u + 2u + 2 * 5u);  // D + O/NO + >=5 lines
  txn.Commit([](Status) {});
  sim_.Run();
  EXPECT_EQ(workload_.orders()->row_count(), 1u);
  EXPECT_EQ(workload_.new_order()->row_count(), 1u);
  EXPECT_GE(workload_.order_line()->row_count(), 5u);
}

TEST_F(TpccTest, PaymentWritesHistoryAndDeltas) {
  Transaction txn(&db_);
  workload_.Prepare(TpccTxnType::kPayment, &txn);
  EXPECT_EQ(txn.write_count(), 4u);  // W + D + C deltas + H insert
  txn.Commit([](Status) {});
  sim_.Run();
  EXPECT_EQ(workload_.history()->row_count(), 1u);
}

TEST_F(TpccTest, ReadOnlyTransactionsLogAlmostNothing) {
  Transaction txn(&db_);
  workload_.Prepare(TpccTxnType::kOrderStatus, &txn);
  EXPECT_EQ(txn.write_count(), 0u);
  Transaction txn2(&db_);
  workload_.Prepare(TpccTxnType::kStockLevel, &txn2);
  EXPECT_EQ(txn2.write_count(), 0u);
}

TEST_F(TpccTest, LogFootprintsAreRealistic) {
  // NewOrder carries the bulk of the log volume; Payment is light.
  Transaction no(&db_);
  workload_.Prepare(TpccTxnType::kNewOrder, &no);
  Transaction pay(&db_);
  workload_.Prepare(TpccTxnType::kPayment, &pay);
  EXPECT_GT(no.LogBytes(), 500u);
  EXPECT_LT(no.LogBytes(), 3000u);
  EXPECT_GT(pay.LogBytes(), 100u);
  EXPECT_LT(pay.LogBytes(), 500u);
  EXPECT_GT(no.LogBytes(), pay.LogBytes());
}

TEST_F(TpccTest, OrderIdsAdvanceMonotonically) {
  uint64_t before = workload_.next_order_id();
  for (int i = 0; i < 3; ++i) {
    Transaction txn(&db_);
    workload_.Prepare(TpccTxnType::kNewOrder, &txn);
    txn.Commit([](Status) {});
  }
  sim_.Run();
  EXPECT_EQ(workload_.next_order_id(), before + 3);
}

TEST_F(TpccTest, WorkloadDriverProducesThroughput) {
  WorkloadDriver driver(&sim_, &db_, &workload_, 2);
  WorkloadResult result = driver.Run(sim::Ms(10), sim::Ms(50));
  EXPECT_GT(result.committed_txns, 1000u);
  EXPECT_GT(result.txns_per_sec, 20000.0);
  EXPECT_GT(result.latency_us.count(), 100u);
  EXPECT_GT(result.avg_log_bytes_per_txn, 200.0);
  EXPECT_LT(result.avg_log_bytes_per_txn, 2000.0);
}

TEST_F(TpccTest, ThroughputScalesWithWorkers) {
  sim::Simulator sim1, sim4;
  NoLogBackend b1(&sim1), b4(&sim4);
  LogManager l1(&sim1, &b1), l4(&sim4, &b4);
  Database d1(&l1), d4(&l4);
  TpccWorkload w1(&d1, SmallTpcc(), 42), w4(&d4, SmallTpcc(), 42);
  w1.Populate();
  w4.Populate();
  WorkloadDriver driver1(&sim1, &d1, &w1, 1);
  WorkloadDriver driver4(&sim4, &d4, &w4, 4);
  auto r1 = driver1.Run(sim::Ms(10), sim::Ms(50));
  auto r4 = driver4.Run(sim::Ms(10), sim::Ms(50));
  EXPECT_NEAR(r4.txns_per_sec / r1.txns_per_sec, 4.0, 0.4);
}

}  // namespace
}  // namespace xssd::db
