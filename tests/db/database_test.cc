#include "db/database.h"

#include <gtest/gtest.h>

#include "db/log_backend.h"
#include "db/tpcc.h"

namespace xssd::db {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest()
      : backend_(&sim_), log_(&sim_, &backend_, FastFlush()), db_(&log_) {}

  static LogManagerConfig FastFlush() {
    LogManagerConfig config;
    config.group_bytes = 1;  // flush every append immediately
    config.flush_timeout = sim::Us(1);
    return config;
  }

  sim::Simulator sim_;
  NoLogBackend backend_;
  LogManager log_;
  Database db_;
};

TEST_F(DatabaseTest, CreateAndLookupTables) {
  Table* t0 = db_.CreateTable("alpha");
  Table* t1 = db_.CreateTable("beta");
  EXPECT_EQ(t0->id(), 0u);
  EXPECT_EQ(t1->id(), 1u);
  EXPECT_EQ(db_.GetTable(0), t0);
  EXPECT_EQ(db_.GetTableByName("beta"), t1);
  EXPECT_EQ(db_.GetTable(5), nullptr);
  EXPECT_EQ(db_.GetTableByName("gamma"), nullptr);
}

TEST_F(DatabaseTest, InsertCommitsApplyAndLog) {
  Table* table = db_.CreateTable("t");
  Transaction txn(&db_);
  txn.Insert(table, 5, {1, 2, 3});
  EXPECT_EQ(table->Get(5), nullptr);  // not visible before commit

  bool durable = false;
  txn.Commit([&](Status s) { durable = s.ok(); });
  ASSERT_NE(table->Get(5), nullptr);  // applied at commit
  EXPECT_EQ(*table->Get(5), (std::vector<uint8_t>{1, 2, 3}));
  sim_.Run();
  EXPECT_TRUE(durable);
  EXPECT_GT(log_.durable_lsn(), 0u);
}

TEST_F(DatabaseTest, UpdateDeltaPatchesRow) {
  Table* table = db_.CreateTable("t");
  {
    Transaction txn(&db_);
    txn.Insert(table, 1, std::vector<uint8_t>(10, 0));
    txn.Commit([](Status) {});
  }
  {
    Transaction txn(&db_);
    txn.UpdateDelta(table, 1, 4, {9, 9});
    txn.Commit([](Status) {});
  }
  sim_.Run();
  const auto* row = table->Get(1);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[3], 0);
  EXPECT_EQ((*row)[4], 9);
  EXPECT_EQ((*row)[5], 9);
  EXPECT_EQ((*row)[6], 0);
}

TEST_F(DatabaseTest, DeltaBeyondRowRejected) {
  Table* table = db_.CreateTable("t");
  table->Put(1, std::vector<uint8_t>(4, 0));
  EXPECT_TRUE(table->ApplyDelta(1, 3, {1, 2}).IsOutOfRange());
  EXPECT_TRUE(table->ApplyDelta(99, 0, {1}).IsNotFound());
}

TEST_F(DatabaseTest, EraseRemovesRow) {
  Table* table = db_.CreateTable("t");
  {
    Transaction txn(&db_);
    txn.Insert(table, 2, {7});
    txn.Commit([](Status) {});
  }
  {
    Transaction txn(&db_);
    txn.Erase(table, 2);
    txn.Commit([](Status) {});
  }
  sim_.Run();
  EXPECT_EQ(table->Get(2), nullptr);
}

TEST_F(DatabaseTest, LogBytesMatchesSerializedFootprint) {
  Table* table = db_.CreateTable("t");
  Transaction txn(&db_);
  txn.Insert(table, 1, std::vector<uint8_t>(100, 1));
  txn.UpdateDelta(table, 1, 0, std::vector<uint8_t>(20, 2));
  size_t expected = (LogRecord::kHeaderBytes + 100) +
                    (LogRecord::kHeaderBytes + 24) +  // 4B offset prefix
                    LogRecord::kHeaderBytes;          // commit marker
  EXPECT_EQ(txn.LogBytes(), expected);
}

TEST_F(DatabaseTest, WalReplayReproducesTableState) {
  // Capture the WAL, replay it into a second database, compare states —
  // the recoverability property the whole system exists for.
  class CapturingBackend : public LogBackend {
   public:
    explicit CapturingBackend(sim::Simulator* sim) : sim_(sim) {}
    void AppendDurable(const uint8_t* data, size_t len,
                       std::function<void(Status)> done) override {
      Account(len);
      wal.insert(wal.end(), data, data + len);
      sim_->Schedule(0, [done = std::move(done)]() { done(Status::OK()); });
    }
    std::string name() const override { return "capture"; }
    int data_movements_per_byte() const override { return 0; }
    std::vector<uint8_t> wal;
    sim::Simulator* sim_;
  };

  sim::Simulator sim;
  CapturingBackend backend(&sim);
  LogManager log(&sim, &backend, FastFlush());
  Database source(&log);
  Table* table = source.CreateTable("t");

  sim::Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    Transaction txn(&source);
    uint64_t key = rng.Uniform(30);
    switch (rng.Uniform(3)) {
      case 0:
        txn.Insert(table, key, std::vector<uint8_t>(
                                   16, static_cast<uint8_t>(rng.Next())));
        break;
      case 1:
        if (table->Get(key) != nullptr) {
          txn.UpdateDelta(table, key, rng.Uniform(8),
                          std::vector<uint8_t>(
                              4, static_cast<uint8_t>(rng.Next())));
        }
        break;
      case 2:
        txn.Erase(table, key);
        break;
    }
    txn.Commit([](Status) {});
    sim.Run();
  }

  // Replay.
  bool torn = false;
  auto records = ParseLogStream(backend.wal, &torn);
  EXPECT_FALSE(torn);
  NoLogBackend null_backend(&sim);
  LogManager replay_log(&sim, &null_backend, FastFlush());
  Database replica(&replay_log);
  Table* replica_table = replica.CreateTable("t");
  for (const LogRecord& record : records) {
    switch (record.op) {
      case LogOp::kInsert:
        replica_table->Put(record.key, record.payload);
        break;
      case LogOp::kUpdate: {
        uint32_t offset = 0;
        std::memcpy(&offset, record.payload.data(), 4);
        std::vector<uint8_t> delta(record.payload.begin() + 4,
                                   record.payload.end());
        replica_table->ApplyDelta(record.key, offset, delta);
        break;
      }
      case LogOp::kDelete:
        replica_table->Erase(record.key);
        break;
      case LogOp::kCommit:
        break;
    }
  }
  // Compare all 30 candidate keys.
  for (uint64_t key = 0; key < 30; ++key) {
    const auto* a = table->Get(key);
    const auto* b = replica_table->Get(key);
    ASSERT_EQ(a == nullptr, b == nullptr) << "key " << key;
    if (a != nullptr) {
      EXPECT_EQ(*a, *b) << "key " << key;
    }
  }
}

}  // namespace
}  // namespace xssd::db
