#include <gtest/gtest.h>

#include "db/log_backend.h"
#include "db/log_manager.h"
#include "db/log_record.h"

namespace xssd::db {
namespace {

LogRecord MakeRecord(uint64_t txn, size_t payload_len) {
  LogRecord record;
  record.txn_id = txn;
  record.table_id = 2;
  record.op = LogOp::kInsert;
  record.key = txn * 10;
  record.payload.assign(payload_len, static_cast<uint8_t>(txn));
  return record;
}

TEST(LogRecordWire, RoundTrip) {
  LogRecord record = MakeRecord(7, 123);
  std::vector<uint8_t> wire;
  SerializeLogRecord(record, &wire);
  EXPECT_EQ(wire.size(), record.SerializedSize());

  size_t offset = 0;
  Result<LogRecord> parsed = ParseLogRecord(wire, &offset);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->txn_id, 7u);
  EXPECT_EQ(parsed->table_id, 2u);
  EXPECT_EQ(parsed->op, LogOp::kInsert);
  EXPECT_EQ(parsed->key, 70u);
  EXPECT_EQ(parsed->payload, record.payload);
  EXPECT_EQ(offset, wire.size());
}

TEST(LogRecordWire, CorruptionDetected) {
  std::vector<uint8_t> wire;
  SerializeLogRecord(MakeRecord(1, 50), &wire);
  wire[40] ^= 0x10;
  size_t offset = 0;
  EXPECT_TRUE(ParseLogRecord(wire, &offset).status().IsCorruption());
}

TEST(LogRecordWire, TornTailStopsCleanly) {
  std::vector<uint8_t> wire;
  SerializeLogRecord(MakeRecord(1, 40), &wire);
  SerializeLogRecord(MakeRecord(2, 40), &wire);
  size_t full = wire.size();
  SerializeLogRecord(MakeRecord(3, 40), &wire);
  wire.resize(full + 10);  // third record torn mid-header/payload

  bool torn = false;
  auto records = ParseLogStream(wire, &torn);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_TRUE(torn);
  EXPECT_EQ(records[0].txn_id, 1u);
  EXPECT_EQ(records[1].txn_id, 2u);
}

TEST(LogRecordWire, CleanStreamHasNoTornFlag) {
  std::vector<uint8_t> wire;
  for (int i = 0; i < 5; ++i) SerializeLogRecord(MakeRecord(i, 16), &wire);
  bool torn = true;
  auto records = ParseLogStream(wire, &torn);
  EXPECT_EQ(records.size(), 5u);
  EXPECT_FALSE(torn);
}

class LogManagerTest : public ::testing::Test {
 protected:
  LogManagerTest() : backend_(&sim_) {}

  LogManager MakeManager(uint64_t group, sim::SimTime timeout,
                         uint64_t cap = 1 << 20) {
    LogManagerConfig config;
    config.group_bytes = group;
    config.flush_timeout = timeout;
    config.max_buffer_bytes = cap;
    return LogManager(&sim_, &backend_, config);
  }

  sim::Simulator sim_;
  NoLogBackend backend_;
};

TEST_F(LogManagerTest, FlushTriggersAtGroupThreshold) {
  LogManagerConfig config;
  config.group_bytes = 100;
  config.flush_timeout = sim::Sec(10);
  LogManager log(&sim_, &backend_, config);

  std::vector<uint8_t> data(60, 1);
  log.Append(data.data(), data.size());
  sim_.RunFor(sim::Ms(1));
  EXPECT_EQ(log.durable_lsn(), 0u);  // below threshold, no timeout yet

  log.Append(data.data(), data.size());  // crosses 100 bytes
  sim_.RunFor(sim::Ms(1));
  EXPECT_EQ(log.durable_lsn(), 120u);
  EXPECT_EQ(log.flushes_issued(), 1u);
}

TEST_F(LogManagerTest, TimeoutFlushesPartialGroup) {
  LogManagerConfig config;
  config.group_bytes = 1 << 20;
  config.flush_timeout = sim::Us(500);
  LogManager log(&sim_, &backend_, config);

  std::vector<uint8_t> data(10, 1);
  log.Append(data.data(), data.size());
  sim_.RunFor(sim::Us(400));
  EXPECT_EQ(log.durable_lsn(), 0u);
  sim_.RunFor(sim::Us(200));
  EXPECT_EQ(log.durable_lsn(), 10u);
}

TEST_F(LogManagerTest, WaitersResolveInLsnOrder) {
  LogManagerConfig config;
  config.group_bytes = 64;
  config.flush_timeout = sim::Us(100);
  LogManager log(&sim_, &backend_, config);

  std::vector<int> resolved;
  std::vector<uint8_t> data(32, 1);
  uint64_t lsn1 = log.Append(data.data(), data.size());
  log.WaitDurable(lsn1, [&](Status) { resolved.push_back(1); });
  uint64_t lsn2 = log.Append(data.data(), data.size());
  log.WaitDurable(lsn2, [&](Status) { resolved.push_back(2); });
  sim_.Run();
  EXPECT_EQ(resolved, (std::vector<int>{1, 2}));
}

TEST_F(LogManagerTest, WaiterOnAlreadyDurableLsnFiresImmediately) {
  LogManagerConfig config;
  config.group_bytes = 8;
  config.flush_timeout = sim::Us(10);
  LogManager log(&sim_, &backend_, config);
  std::vector<uint8_t> data(16, 1);
  uint64_t lsn = log.Append(data.data(), data.size());
  sim_.Run();
  bool fired = false;
  log.WaitDurable(lsn, [&](Status) { fired = true; });
  EXPECT_TRUE(fired);
}

TEST_F(LogManagerTest, MaxFlushCapsBatches) {
  LogManagerConfig config;
  config.group_bytes = 64;
  config.max_flush_bytes = 128;
  config.flush_timeout = sim::Ms(10);
  LogManager log(&sim_, &backend_, config);
  std::vector<uint8_t> data(512, 1);
  log.Append(data.data(), data.size());
  sim_.Run();
  EXPECT_EQ(log.durable_lsn(), 512u);
  EXPECT_GE(log.flushes_issued(), 4u);  // 512 / 128
}

TEST_F(LogManagerTest, BackpressureStallsUntilSpace) {
  LogManagerConfig config;
  config.group_bytes = 64;
  config.max_buffer_bytes = 128;
  config.flush_timeout = sim::Us(50);
  LogManager log(&sim_, &backend_, config);

  std::vector<uint8_t> data(128, 1);
  log.Append(data.data(), data.size());
  EXPECT_FALSE(log.HasSpace(128));
  bool released = false;
  log.WaitForSpace(128, [&]() { released = true; });
  EXPECT_FALSE(released);
  sim_.Run();  // flush drains the buffer
  EXPECT_TRUE(released);
  EXPECT_TRUE(log.HasSpace(128));
}

TEST_F(LogManagerTest, BytesFlowThroughBackendIntact) {
  // Use a capturing backend to check byte-exact flush contents.
  class CapturingBackend : public LogBackend {
   public:
    explicit CapturingBackend(sim::Simulator* sim) : sim_(sim) {}
    void AppendDurable(const uint8_t* data, size_t len,
                       std::function<void(Status)> done) override {
      Account(len);
      captured.insert(captured.end(), data, data + len);
      sim_->Schedule(0, [done = std::move(done)]() { done(Status::OK()); });
    }
    std::string name() const override { return "capture"; }
    int data_movements_per_byte() const override { return 0; }
    std::vector<uint8_t> captured;
    sim::Simulator* sim_;
  };

  CapturingBackend backend(&sim_);
  LogManagerConfig config;
  config.group_bytes = 50;
  config.flush_timeout = sim::Us(10);
  LogManager log(&sim_, &backend, config);

  std::vector<uint8_t> all;
  for (int i = 0; i < 10; ++i) {
    std::vector<uint8_t> chunk(37, static_cast<uint8_t>(i));
    all.insert(all.end(), chunk.begin(), chunk.end());
    log.Append(chunk.data(), chunk.size());
    sim_.RunFor(sim::Us(30));
  }
  sim_.Run();
  EXPECT_EQ(backend.captured, all);  // order- and byte-exact
}

}  // namespace
}  // namespace xssd::db
