// Registry edge cases the sampler's correctness leans on: one kind per
// name (a collision dies loudly instead of aliasing two series), Reset()
// preserving registered pointers (components cache them), and the
// sampler's Reset()-safe counter deltas across a mid-run reset.

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace xssd::obs {
namespace {

TEST(MetricsEdgeDeathTest, EveryKindPairCollisionDies) {
  // All six cross-kind orders: whichever kind claimed the name first, a
  // later Get under another kind must CHECK-fail rather than return a
  // fresh object that would silently fork the series.
  EXPECT_DEATH(
      {
        MetricsRegistry r;
        r.GetCounter("x.metric");
        r.GetLatency("x.metric");
      },
      "CHECK failed");
  EXPECT_DEATH(
      {
        MetricsRegistry r;
        r.GetGauge("x.metric");
        r.GetCounter("x.metric");
      },
      "CHECK failed");
  EXPECT_DEATH(
      {
        MetricsRegistry r;
        r.GetGauge("x.metric");
        r.GetLatency("x.metric");
      },
      "CHECK failed");
  EXPECT_DEATH(
      {
        MetricsRegistry r;
        r.GetLatency("x.metric");
        r.GetCounter("x.metric");
      },
      "CHECK failed");
  EXPECT_DEATH(
      {
        MetricsRegistry r;
        r.GetLatency("x.metric");
        r.GetGauge("x.metric");
      },
      "CHECK failed");
  EXPECT_DEATH(
      {
        MetricsRegistry r;
        r.GetCounter("x.metric");
        r.GetGauge("x.metric");
      },
      "CHECK failed");
}

TEST(MetricsEdge, ResetPreservesPointersAcrossContinuedUse) {
  MetricsRegistry registry;
  Counter* ops = registry.GetCounter("e.ops");
  Gauge* depth = registry.GetGauge("e.depth");
  LatencyRecorder* lat = registry.GetLatency("e.lat");
  ops->Add(10);
  depth->Set(4);
  lat->Add(100);

  registry.Reset();

  // The cached pointers stay valid and live: components never re-Get.
  EXPECT_EQ(ops->value(), 0u);
  EXPECT_DOUBLE_EQ(depth->value(), 0.0);
  EXPECT_EQ(lat->count(), 0u);
  ops->Add(3);
  depth->Set(9);
  lat->Add(7);
  EXPECT_EQ(registry.GetCounter("e.ops"), ops);
  EXPECT_EQ(registry.GetGauge("e.depth"), depth);
  EXPECT_EQ(registry.GetLatency("e.lat"), lat);
  EXPECT_EQ(ops->value(), 3u);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsEdge, LatencyWindowTrackingSurvivesReset) {
  MetricsRegistry registry;
  LatencyRecorder* lat = registry.GetLatency("e.lat");
  lat->EnableWindowTracking();
  lat->Add(500);
  registry.Reset();  // Clear() must keep window tracking enabled
  EXPECT_TRUE(lat->window_tracking());
  lat->Add(900);
  LatencyRecorder::WindowStats win = lat->TakeWindow();
  EXPECT_EQ(win.count, 1u);
  EXPECT_DOUBLE_EQ(win.min, 900.0);
}

TEST(MetricsEdge, SamplerCounterDeltaSpansAMidRunReset) {
  sim::Simulator sim;
  MetricsRegistry registry;
  Counter* ops = registry.GetCounter("e.ops");
  TimeSeriesSampler sampler(&sim, &registry, {sim::Ms(1), 4096});
  sampler.Start();

  // Window 0: 40 ops. Reset mid-window-1 after 10 more, then 7 post-reset
  // ops: the delta must be the post-reset value (7), never a wrapped
  // negative and never the pre-reset 10 leaking through.
  sim.Schedule(sim::Us(500), [&]() { ops->Add(40); });
  sim.Schedule(sim::Us(1200), [&]() { ops->Add(10); });
  sim.Schedule(sim::Us(1300), [&]() { registry.Reset(); });
  sim.Schedule(sim::Us(1400), [&]() { ops->Add(7); });
  sim.Schedule(sim::Us(2100), [&]() {});
  sim.Run();
  sampler.Finalize();

  const auto& series = sampler.counter_series().at("e.ops");
  ASSERT_GE(series.values.size(), 2u);
  EXPECT_DOUBLE_EQ(series.values[0], 40.0);
  EXPECT_DOUBLE_EQ(series.values[1], 7.0);
}

}  // namespace
}  // namespace xssd::obs
