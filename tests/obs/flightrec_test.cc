#include "obs/flightrec.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/time.h"

namespace xssd::obs {
namespace {

std::string TempPath(const char* stem) {
  return ::testing::TempDir() + stem;
}

TEST(FlightRecorder, RecordsInOrderWithMonotonicSeq) {
  FlightRecorder fr;
  fr.Record(sim::Us(1), "fault", "program fail injected");
  fr.Record(sim::Us(2), "ftl.gc", "gc collect block 7, valid=3");
  fr.Record(sim::Us(3), "ha", "member 1 promoting at term 2");

  std::vector<FlightRecorder::Entry> entries = fr.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].seq, 0u);
  EXPECT_EQ(entries[1].seq, 1u);
  EXPECT_EQ(entries[2].seq, 2u);
  EXPECT_EQ(entries[0].category, "fault");
  EXPECT_EQ(entries[2].message, "member 1 promoting at term 2");
  EXPECT_EQ(fr.appended(), 3u);
  EXPECT_EQ(fr.evicted(), 0u);
}

TEST(FlightRecorder, BoundedRingEvictsOldestFirst) {
  FlightRecorderOptions options;
  options.capacity = 4;
  FlightRecorder fr(options);
  for (int i = 0; i < 10; ++i) {
    fr.Record(sim::Us(i), "t", "event " + std::to_string(i));
  }
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.appended(), 10u);
  EXPECT_EQ(fr.evicted(), 6u);
  std::vector<FlightRecorder::Entry> entries = fr.Snapshot();
  ASSERT_EQ(entries.size(), 4u);
  // Oldest-first snapshot of the survivors: events 6..9.
  EXPECT_EQ(entries.front().message, "event 6");
  EXPECT_EQ(entries.front().seq, 6u);
  EXPECT_EQ(entries.back().message, "event 9");
  EXPECT_EQ(entries.back().seq, 9u);
}

TEST(FlightRecorder, DumpCarriesReasonCountsAndEntries) {
  FlightRecorderOptions options;
  options.capacity = 2;
  FlightRecorder fr(options);
  fr.Record(sim::Us(5), "fault", "crash clause fired at site gc (hard)");
  fr.Record(sim::Us(6), "device", "pri hard crash");
  fr.Record(sim::Us(7), "device", "pri reboot into epoch 2");

  std::ostringstream out;
  fr.Dump(out, "test dump");
  std::string text = out.str();
  EXPECT_NE(text.find("reason: test dump"), std::string::npos);
  EXPECT_NE(text.find("3 recorded"), std::string::npos);
  EXPECT_NE(text.find("1 evicted"), std::string::npos);
  // Only the retained tail appears; the evicted entry does not.
  EXPECT_EQ(text.find("crash clause fired"), std::string::npos);
  EXPECT_NE(text.find("pri hard crash"), std::string::npos);
  EXPECT_NE(text.find("pri reboot into epoch 2"), std::string::npos);
}

TEST(FlightRecorder, DumpToFileWritesTheRing) {
  FlightRecorder fr;
  fr.Record(sim::Ms(1), "watchdog", "rule cliff: ftl.write_amp > 1.5");
  std::string path = TempPath("flightrec_dump.txt");
  ASSERT_TRUE(fr.DumpToFile(path, "unit test").ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("rule cliff"), std::string::npos);
  EXPECT_NE(buf.str().find("unit test"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, AutoDumpGoesToTheConfiguredPath) {
  FlightRecorderOptions options;
  options.dump_path = TempPath("flightrec_auto.txt");
  FlightRecorder fr(options);
  fr.Record(sim::Us(3), "fault", "uncorrectable flash read injected");
  fr.AutoDump("injected crash at ftl.gc.relocate");
  EXPECT_EQ(fr.auto_dumps(), 1u);

  std::ifstream in(options.dump_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("injected crash at ftl.gc.relocate"),
            std::string::npos);
  EXPECT_NE(buf.str().find("uncorrectable flash read injected"),
            std::string::npos);
  std::remove(options.dump_path.c_str());
}

TEST(FlightRecorder, SelfMetricsAreObsNamespaced) {
  FlightRecorderOptions options;
  options.capacity = 2;
  FlightRecorder fr(options);
  MetricsRegistry registry;
  fr.SetMetrics(&registry);
  for (int i = 0; i < 5; ++i) fr.Record(sim::Us(i), "t", "e");
  EXPECT_EQ(registry.FindCounter("obs.flightrec.appends")->value(), 5u);
  EXPECT_EQ(registry.FindCounter("obs.flightrec.evicted")->value(), 3u);
}

}  // namespace
}  // namespace xssd::obs
