#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.h"

namespace xssd::obs {
namespace {

TEST(MetricsRegistry, FindBeforeRegisterReturnsNull) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("cmb.append_bytes"), nullptr);
  EXPECT_EQ(registry.FindGauge("cmb.credit"), nullptr);
  EXPECT_EQ(registry.FindLatency("nvme.cmd_latency_us"), nullptr);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(MetricsRegistry, GetIsFindOrCreateWithStablePointers) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("ftl.gc.pages_moved");
  counter->Add(7);
  // Second Get with the same name returns the same object, not a fresh one.
  EXPECT_EQ(registry.GetCounter("ftl.gc.pages_moved"), counter);
  EXPECT_EQ(counter->value(), 7u);
  EXPECT_EQ(registry.FindCounter("ftl.gc.pages_moved"), counter);

  Gauge* gauge = registry.GetGauge("ftl.dirty_pages");
  gauge->Set(3);
  gauge->Add(2);
  gauge->Sub(1);
  EXPECT_EQ(registry.GetGauge("ftl.dirty_pages"), gauge);
  EXPECT_DOUBLE_EQ(gauge->value(), 4.0);

  LatencyRecorder* latency = registry.GetLatency("destage.page_latency_us");
  latency->Add(12.5);
  EXPECT_EQ(registry.GetLatency("destage.page_latency_us"), latency);
  EXPECT_EQ(latency->count(), 1u);

  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("a.count");
  Gauge* gauge = registry.GetGauge("a.level");
  LatencyRecorder* latency = registry.GetLatency("a.lat_us");
  counter->Add(9);
  gauge->Set(1.5);
  latency->Add(3.0);

  registry.Reset();

  EXPECT_EQ(counter->value(), 0u);
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
  EXPECT_TRUE(latency->empty());
  // Handed-out pointers stay valid and names stay registered.
  EXPECT_EQ(registry.FindCounter("a.count"), counter);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistry, IterationIsSortedByName) {
  MetricsRegistry registry;
  // Register out of order; the exporter-facing map walks lexicographically.
  registry.GetCounter("zeta.ops");
  registry.GetCounter("alpha.ops");
  registry.GetCounter("mid.ops");
  std::vector<std::string> names;
  for (const auto& [name, counter] : registry.counters()) {
    names.push_back(name);
  }
  EXPECT_EQ(names,
            (std::vector<std::string>{"alpha.ops", "mid.ops", "zeta.ops"}));
}

TEST(MetricsRegistryDeathTest, RejectsKindMismatch) {
  MetricsRegistry registry;
  registry.GetCounter("cmb.credit");
  EXPECT_DEATH(registry.GetGauge("cmb.credit"), "CHECK failed");
}

TEST(MetricsRegistryDeathTest, RejectsMalformedNames) {
  MetricsRegistry registry;
  EXPECT_DEATH(registry.GetCounter(""), "CHECK failed");
  EXPECT_DEATH(registry.GetCounter(".leading"), "CHECK failed");
  EXPECT_DEATH(registry.GetCounter("trailing."), "CHECK failed");
  EXPECT_DEATH(registry.GetCounter("has space"), "CHECK failed");
}

TEST(JsonExporter, EmptyRegistrySnapshotIsValidJson) {
  MetricsRegistry registry;
  std::string snapshot = JsonExporter(&registry).ToString();
  std::string error;
  EXPECT_TRUE(IsValidJson(snapshot, &error)) << error;
  EXPECT_NE(snapshot.find("\"counters\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"gauges\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"latencies\""), std::string::npos);
}

TEST(JsonExporter, SnapshotCarriesEveryMetricKind) {
  MetricsRegistry registry;
  registry.GetCounter("flash.reads")->Add(42);
  registry.GetGauge("ftl.free_blocks")->Set(17);
  LatencyRecorder* latency = registry.GetLatency("nvme.cmd_latency_us");
  for (int i = 1; i <= 10; ++i) latency->Add(i);

  std::string snapshot = JsonExporter(&registry).ToString();
  std::string error;
  ASSERT_TRUE(IsValidJson(snapshot, &error)) << error;
  EXPECT_NE(snapshot.find("\"flash.reads\": 42"), std::string::npos)
      << snapshot;
  EXPECT_NE(snapshot.find("\"ftl.free_blocks\": 17"), std::string::npos)
      << snapshot;
  EXPECT_NE(snapshot.find("\"nvme.cmd_latency_us\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"count\": 10"), std::string::npos);
}

}  // namespace
}  // namespace xssd::obs
