#include "obs/critical_path.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/span.h"
#include "sim/simulator.h"

namespace xssd::obs {
namespace {

/// Builds synthetic span trees by driving the recorder at chosen virtual
/// times: schedule a callback at `at`, run the simulator up to it.
class CriticalPathTest : public ::testing::Test {
 protected:
  void At(sim::SimTime at, std::function<void()> fn) {
    sim_.ScheduleAt(at, std::move(fn));
  }

  std::vector<RequestBreakdown> Analyze() {
    sim_.Run();
    CriticalPathAnalyzer analyzer(&spans_);
    return analyzer.Analyze();
  }

  static sim::SimTime Attributed(const RequestBreakdown& b) {
    sim::SimTime total = 0;
    for (const PathSegment& seg : b.segments) total += seg.end - seg.begin;
    return total;
  }

  sim::Simulator sim_;
  SpanRecorder spans_{&sim_};
  uint16_t node_ = spans_.InternNode("dev");
};

TEST_F(CriticalPathTest, SegmentsPartitionTheWindowExactly) {
  SpanContext root, child_a, child_b;
  At(100, [&] { root = spans_.StartTrace("append", node_, 0, 64); });
  At(110, [&] { child_a = spans_.StartSpan(Stage::kCmbStage, node_, root); });
  At(130, [&] { spans_.EndSpan(child_a); });
  At(150, [&] {
    child_b = spans_.StartSpan(Stage::kDestagePage, node_, root);
  });
  At(180, [&] { spans_.EndSpan(child_b); });
  At(200, [&] { spans_.EndSpan(root); });

  std::vector<RequestBreakdown> breakdowns = Analyze();
  ASSERT_EQ(breakdowns.size(), 1u);
  const RequestBreakdown& b = breakdowns[0];
  EXPECT_TRUE(b.conserved);
  EXPECT_EQ(Attributed(b), b.end - b.start);
  // self [100,110), cmb [110,130), self [130,150), destage [150,180),
  // self [180,200)
  ASSERT_EQ(b.segments.size(), 5u);
  EXPECT_EQ(b.segments[0].stage, Stage::kRequest);
  EXPECT_EQ(b.segments[1].stage, Stage::kCmbStage);
  EXPECT_EQ(b.segments[1].begin, 110u);
  EXPECT_EQ(b.segments[1].end, 130u);
  EXPECT_EQ(b.segments[2].stage, Stage::kRequest);
  EXPECT_EQ(b.segments[3].stage, Stage::kDestagePage);
  EXPECT_EQ(b.segments[4].stage, Stage::kRequest);
  EXPECT_EQ(b.segments[4].end, 200u);
}

TEST_F(CriticalPathTest, DeeperStageWinsTheOverlap) {
  // A replication wait (depth 3) covering [10,90) with an NTB hop
  // (depth 4) nested at [30,50): the hop instant belongs to the link, the
  // rest of the interval to the wait.
  SpanContext root, wait, hop;
  At(0, [&] { root = spans_.StartTrace("fsync", node_, 0, 32); });
  At(10, [&] {
    wait = spans_.StartSpan(Stage::kReplicationWait, node_, root);
  });
  At(30, [&] { hop = spans_.StartSpan(Stage::kNtbLink, node_, wait); });
  At(50, [&] { spans_.EndSpan(hop); });
  At(90, [&] { spans_.EndSpan(wait); });
  At(100, [&] { spans_.EndSpan(root); });

  std::vector<RequestBreakdown> breakdowns = Analyze();
  ASSERT_EQ(breakdowns.size(), 1u);
  const RequestBreakdown& b = breakdowns[0];
  EXPECT_TRUE(b.conserved);
  ASSERT_EQ(b.segments.size(), 5u);
  EXPECT_EQ(b.segments[1].stage, Stage::kReplicationWait);
  EXPECT_EQ(b.segments[1].end, 30u);
  EXPECT_EQ(b.segments[2].stage, Stage::kNtbLink);
  EXPECT_EQ(b.segments[2].begin, 30u);
  EXPECT_EQ(b.segments[2].end, 50u);
  EXPECT_EQ(b.segments[3].stage, Stage::kReplicationWait);
  EXPECT_EQ(b.segments[3].begin, 50u);
  EXPECT_EQ(b.segments[3].end, 90u);
}

TEST_F(CriticalPathTest, OrphanSpansJoinByOffsetRange) {
  // An orphan destage span (timer-cut page, no ambient context) that
  // carries bytes [0,64) overlapping the request's range is charged to the
  // request window; an orphan with a disjoint range is not.
  SpanContext root, joined, disjoint;
  At(0, [&] { root = spans_.StartTrace("append", node_, 0, 64); });
  At(20, [&] {
    joined = spans_.StartSpan(Stage::kDestagePage, node_, {});
    spans_.SetRange(joined, 32, 96);
    disjoint = spans_.StartSpan(Stage::kFlashProgram, node_, {});
    spans_.SetRange(disjoint, 64, 128);
  });
  At(60, [&] {
    spans_.EndSpan(joined);
    spans_.EndSpan(disjoint);
  });
  At(80, [&] { spans_.EndSpan(root); });

  std::vector<RequestBreakdown> breakdowns = Analyze();
  // Orphans mint their own traces but are not request roots, so exactly one
  // breakdown comes out.
  ASSERT_EQ(breakdowns.size(), 1u);
  const RequestBreakdown& b = breakdowns[0];
  EXPECT_TRUE(b.conserved);
  ASSERT_EQ(b.segments.size(), 3u);
  EXPECT_EQ(b.segments[1].stage, Stage::kDestagePage);
  EXPECT_EQ(b.segments[1].begin, 20u);
  EXPECT_EQ(b.segments[1].end, 60u);
  for (const PathSegment& seg : b.segments) {
    EXPECT_NE(seg.stage, Stage::kFlashProgram);  // disjoint orphan excluded
  }
}

TEST_F(CriticalPathTest, AdjacentSegmentsOfOneStageMerge) {
  // Two back-to-back cmb.stage chunks produce one merged segment, not two.
  SpanContext root, chunk_a, chunk_b;
  At(0, [&] { root = spans_.StartTrace("append", node_, 0, 128); });
  At(10, [&] { chunk_a = spans_.StartSpan(Stage::kCmbStage, node_, root); });
  At(40, [&] {
    spans_.EndSpan(chunk_a);
    chunk_b = spans_.StartSpan(Stage::kCmbStage, node_, root);
  });
  At(70, [&] { spans_.EndSpan(chunk_b); });
  At(80, [&] { spans_.EndSpan(root); });

  std::vector<RequestBreakdown> breakdowns = Analyze();
  ASSERT_EQ(breakdowns.size(), 1u);
  const RequestBreakdown& b = breakdowns[0];
  EXPECT_TRUE(b.conserved);
  ASSERT_EQ(b.segments.size(), 3u);
  EXPECT_EQ(b.segments[1].stage, Stage::kCmbStage);
  EXPECT_EQ(b.segments[1].begin, 10u);
  EXPECT_EQ(b.segments[1].end, 70u);
}

TEST_F(CriticalPathTest, ChildSpillingPastTheRootIsClamped) {
  // A flash program outliving the request (fsync acked from CMB) only
  // charges its in-window part; conservation still holds.
  SpanContext root, flash;
  At(0, [&] { root = spans_.StartTrace("fsync", node_, 0, 16); });
  At(30, [&] { flash = spans_.StartSpan(Stage::kFlashProgram, node_, root); });
  At(50, [&] { spans_.EndSpan(root); });
  At(500, [&] { spans_.EndSpan(flash); });

  std::vector<RequestBreakdown> breakdowns = Analyze();
  ASSERT_EQ(breakdowns.size(), 1u);
  const RequestBreakdown& b = breakdowns[0];
  EXPECT_TRUE(b.conserved);
  ASSERT_EQ(b.segments.size(), 2u);
  EXPECT_EQ(b.segments[1].stage, Stage::kFlashProgram);
  EXPECT_EQ(b.segments[1].begin, 30u);
  EXPECT_EQ(b.segments[1].end, 50u);  // clamped to the root's end
}

TEST_F(CriticalPathTest, OpenAndZeroDurationSpansAreIgnored) {
  SpanContext root, open_child, instant;
  At(0, [&] { root = spans_.StartTrace("read", node_, 0, 8); });
  At(10, [&] {
    open_child = spans_.StartSpan(Stage::kNvmeRead, node_, root);
    instant = spans_.StartSpan(Stage::kHostPoll, node_, root);
    spans_.EndSpan(instant);  // zero-duration: no time to attribute
  });
  At(40, [&] { spans_.EndSpan(root); });
  // open_child is never closed.

  std::vector<RequestBreakdown> breakdowns = Analyze();
  ASSERT_EQ(breakdowns.size(), 1u);
  const RequestBreakdown& b = breakdowns[0];
  EXPECT_TRUE(b.conserved);
  ASSERT_EQ(b.segments.size(), 1u);
  EXPECT_EQ(b.segments[0].stage, Stage::kRequest);
  EXPECT_EQ(Attributed(b), b.end - b.start);
}

TEST_F(CriticalPathTest, ReporterAggregatesAndEmitsValidJson) {
  SpanContext root, child;
  At(0, [&] { root = spans_.StartTrace("append", node_, 0, 64); });
  At(10, [&] { child = spans_.StartSpan(Stage::kCmbStage, node_, root); });
  At(30, [&] { spans_.EndSpan(child); });
  At(50, [&] { spans_.EndSpan(root); });
  sim_.Run();

  BreakdownReporter reporter("unit");
  reporter.AddRun("run0", spans_);
  EXPECT_EQ(reporter.request_count(), 1u);
  EXPECT_EQ(reporter.conservation_violations(), 0u);
  std::string json = reporter.ToJson();
  std::string error;
  EXPECT_TRUE(IsValidJson(json, &error)) << error;
  EXPECT_NE(json.find("\"append\""), std::string::npos);
  EXPECT_NE(json.find("\"dev/cmb.stage\""), std::string::npos);
  EXPECT_NE(json.find("\"dev/request.self\""), std::string::npos);

  MetricsRegistry registry;
  reporter.ExportGauges(&registry, "bench.unit.run0.");
  EXPECT_EQ(
      registry.GetGauge("bench.unit.run0.breakdown.append.count")->value(),
      1.0);
  EXPECT_EQ(registry
                .GetGauge(
                    "bench.unit.run0.breakdown.append.dev.cmb.stage.total_us")
                ->value(),
            20.0 / 1000.0);
}

}  // namespace
}  // namespace xssd::obs
