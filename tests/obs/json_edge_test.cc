// Edge-case tests for the JSON layer: escaping of hostile metric names,
// non-finite numbers, and ParseJson's handling of malformed documents.
// The happy paths live in metrics_test.cc / snapshot_determinism_test.cc;
// these exist because exporter output feeds external tools (CI parsers,
// perfetto) where one bad byte poisons the whole artifact.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"

namespace xssd::obs {
namespace {

TEST(JsonEscape, QuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  // Control bytes below 0x20 must never appear raw in a JSON string.
  std::string escaped = JsonEscape(std::string("\x01\x1f", 2));
  EXPECT_EQ(escaped.find('\x01'), std::string::npos);
  EXPECT_EQ(escaped.find('\x1f'), std::string::npos);
}

TEST(JsonNumber, NonFiniteDegradesToZero) {
  EXPECT_EQ(JsonNumber(std::nan("")), "0");
  EXPECT_EQ(JsonNumber(INFINITY), "0");
  EXPECT_EQ(JsonNumber(-INFINITY), "0");
}

TEST(JsonNumber, IntegralAndFractionalForms) {
  EXPECT_EQ(JsonNumber(0), "0");
  EXPECT_EQ(JsonNumber(42), "42");
  EXPECT_EQ(JsonNumber(-3), "-3");
  // Fractional values must round-trip through a strtod of the text.
  std::string text = JsonNumber(0.1);
  EXPECT_EQ(std::stod(text), 0.1);
}

TEST(JsonExporter, EdgeCaseMetricNamesRoundTripThroughParser) {
  // The registry CHECK-rejects characters that would need escaping, so the
  // exporter's input alphabet is [A-Za-z0-9._-]; drive the full set plus
  // the escape machinery directly through JsonEscape below.
  MetricsRegistry registry;
  registry.GetCounter("UPPER.lower_0-9")->Add(1);
  registry.GetCounter("a.b.c.d.e.f")->Add(2);
  registry.GetGauge("-leading-dash")->Set(3);
  std::string out = JsonExporter(&registry).ToString();
  std::string error;
  ASSERT_TRUE(IsValidJson(out, &error)) << error << "\n" << out;
  Result<JsonValue> doc = ParseJson(out);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* name = counters->Find("UPPER.lower_0-9");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->number, 1);
}

TEST(JsonEscape, HostileStringsSurviveAValidDocument) {
  // Trace/process names (unlike metric names) are arbitrary strings; a
  // quote or control byte in one must still yield a parseable document.
  for (const char* hostile : {"say \"hi\"", "back\\slash", "new\nline"}) {
    std::string doc = "{\"name\": \"" + JsonEscape(hostile) + "\"}";
    std::string error;
    EXPECT_TRUE(IsValidJson(doc, &error)) << error << "\n" << doc;
    Result<JsonValue> parsed = ParseJson(doc);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const JsonValue* name = parsed->Find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name->string, hostile);
  }
}

TEST(JsonExporter, NonFiniteGaugeExportsValidJson) {
  MetricsRegistry registry;
  registry.GetGauge("ratio")->Set(std::nan(""));
  registry.GetGauge("rate")->Set(INFINITY);
  std::string out = JsonExporter(&registry).ToString();
  std::string error;
  EXPECT_TRUE(IsValidJson(out, &error)) << error << "\n" << out;
}

TEST(ParseJson, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",                     // empty input
      "{",                    // unterminated object
      "[1, 2",                // unterminated array
      "[1,]",                 // trailing comma
      "{\"a\":}",             // missing value
      "{\"a\" 1}",            // missing colon
      "{a: 1}",               // unquoted key
      "\"unterminated",       // unterminated string
      "tru",                  // truncated literal
      "NaN",                  // not a JSON number
      "1 2",                  // trailing garbage
      "{} {}",                // two documents
      "{\"a\": 0x10}",        // hex is not JSON
      "[\"\x01\"]",           // raw control byte inside a string
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseJson(text).ok()) << "accepted: " << text;
  }
}

TEST(ParseJson, BoundsNestingDepth) {
  std::string deep;
  for (int i = 0; i < 10000; ++i) deep += '[';
  deep += "1";
  for (int i = 0; i < 10000; ++i) deep += ']';
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(ParseJson, DecodesEscapedKeysAndValues) {
  Result<JsonValue> doc = ParseJson("{\"a\\\"b\": \"x\\\\y\", \"n\": -2.5}");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* value = doc->Find("a\"b");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->string, "x\\y");
  const JsonValue* number = doc->Find("n");
  ASSERT_NE(number, nullptr);
  EXPECT_EQ(number->number, -2.5);
}

}  // namespace
}  // namespace xssd::obs
