#include "obs/watchdog.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/flightrec.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace xssd::obs {
namespace {

TEST(ParseSloRule, ParsesFullSpecAndDefaults) {
  Result<std::vector<SloRule>> rules = ParseSloRules(R"([
    {"name": "cliff", "metric": "ftl.write_amp", "pred": ">",
     "threshold": 1.5, "for_windows": 3, "fatal": true},
    {"metric": "scrub.refresh_pressure"}
  ])");
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules->size(), 2u);
  EXPECT_EQ((*rules)[0].name, "cliff");
  EXPECT_EQ((*rules)[0].pred, SloRule::Pred::kGt);
  EXPECT_DOUBLE_EQ((*rules)[0].threshold, 1.5);
  EXPECT_EQ((*rules)[0].for_windows, 3u);
  EXPECT_TRUE((*rules)[0].fatal);
  // Defaults: name falls back to the metric, one window, non-fatal.
  EXPECT_EQ((*rules)[1].name, "scrub.refresh_pressure");
  EXPECT_EQ((*rules)[1].for_windows, 1u);
  EXPECT_FALSE((*rules)[1].fatal);
}

TEST(ParseSloRule, SingleObjectFormWorks) {
  Result<std::vector<SloRule>> rules =
      ParseSloRules(R"({"metric": "a.b", "pred": "<=", "threshold": 9})");
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 1u);
  EXPECT_EQ((*rules)[0].pred, SloRule::Pred::kLe);
}

TEST(ParseSloRule, RejectsTyposLoudly) {
  // A typo'd field name must fail the parse, not silently weaken a gate.
  EXPECT_FALSE(
      ParseSloRules(R"({"metric": "a.b", "for_window": 3})").ok());
  EXPECT_FALSE(ParseSloRules(R"({"pred": ">", "threshold": 1})").ok());
  EXPECT_FALSE(ParseSloRules(R"({"metric": "a.b", "pred": "=>"})").ok());
  EXPECT_FALSE(ParseSloRules(R"({"metric": "a.b", "for_windows": 0})").ok());
  EXPECT_FALSE(ParseSloRules(R"({"metric": "a.b", "fatal": "yes"})").ok());
  EXPECT_FALSE(ParseSloRules(R"({"metric": ""})").ok());
}

TEST(ParseSloRule, SanitizesRuleNamesForMetricUse) {
  Result<std::vector<SloRule>> rules = ParseSloRules(
      R"({"name": "p99 over bound!", "metric": "a.b"})");
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ((*rules)[0].name, "p99_over_bound_");
}

// Drive a real sampler so the watchdog sees genuine window closes.
class WatchdogWindowTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  MetricsRegistry registry_;
};

TEST_F(WatchdogWindowTest, StreakAlertIsEdgeTriggeredPerExcursion) {
  Gauge* wa = registry_.GetGauge("ftl.write_amp");
  wa->Set(1.0);
  SloWatchdog watchdog;
  SloRule rule;
  rule.name = "cliff";
  rule.metric = "ftl.write_amp";
  rule.pred = SloRule::Pred::kGt;
  rule.threshold = 1.5;
  rule.for_windows = 2;
  watchdog.AddRule(rule);
  watchdog.SetMetrics(&registry_);

  TimeSeriesSampler sampler(&sim_, &registry_, {sim::Ms(1), 4096});
  sampler.set_watchdog(&watchdog);
  sampler.Start();

  // Windows 0-1 healthy, 2-4 breaching (alert at 3), 5 healthy (streak
  // resets), 6-8 breaching again (second alert at 7).
  sim_.Schedule(sim::Ms(2) + sim::Us(10), [&]() { wa->Set(2.0); });
  sim_.Schedule(sim::Ms(5) + sim::Us(10), [&]() { wa->Set(1.1); });
  sim_.Schedule(sim::Ms(6) + sim::Us(10), [&]() { wa->Set(1.9); });
  sim_.Schedule(sim::Ms(9) + sim::Us(10), [&]() {});
  sim_.Run();
  sampler.Finalize();

  EXPECT_EQ(watchdog.alerts(), 2u);
  EXPECT_EQ(watchdog.AlertsFor("cliff"), 2u);
  EXPECT_EQ(watchdog.fatal_alerts(), 0u);
  ASSERT_EQ(watchdog.rules().size(), 1u);
  EXPECT_EQ(watchdog.rules()[0].first_alert_window, 3);
  EXPECT_EQ(registry_.FindCounter("obs.watchdog.alerts")->value(), 2u);
  EXPECT_EQ(
      registry_.FindCounter("obs.watchdog.rule.cliff.alerts")->value(), 2u);
}

TEST_F(WatchdogWindowTest, CounterDeltaRuleFiresOnPerWindowRate) {
  Counter* fenced = registry_.GetCounter("transport.fenced_writes");
  SloWatchdog watchdog;
  SloRule rule;
  rule.name = "fenced";
  rule.metric = "transport.fenced_writes";
  rule.pred = SloRule::Pred::kGt;
  rule.threshold = 0;
  watchdog.AddRule(rule);

  TimeSeriesSampler sampler(&sim_, &registry_, {sim::Ms(1), 4096});
  sampler.set_watchdog(&watchdog);
  sampler.Start();

  // One fenced write in window 1 only: exactly one alert, and the delta
  // semantics mean later quiet windows do NOT re-alert on the cumulative
  // counter staying above zero.
  sim_.Schedule(sim::Ms(1) + sim::Us(10), [&]() { fenced->Add(); });
  sim_.Schedule(sim::Ms(4) + sim::Us(10), [&]() {});
  sim_.Run();
  sampler.Finalize();

  EXPECT_EQ(watchdog.alerts(), 1u);
  EXPECT_EQ(watchdog.rules()[0].first_alert_window, 1);
}

TEST_F(WatchdogWindowTest, MissingSeriesLeavesTheStreakUnchanged) {
  SloWatchdog watchdog;
  SloRule rule;
  rule.metric = "lat.ns";
  rule.stat = "p99";
  rule.pred = SloRule::Pred::kGt;
  rule.threshold = 1;
  watchdog.AddRule(rule);

  TimeSeriesSampler sampler(&sim_, &registry_, {sim::Ms(1), 4096});
  sampler.set_watchdog(&watchdog);
  sampler.Start();
  sim_.Schedule(sim::Ms(3) + sim::Us(10), [&]() {});
  sim_.Run();
  sampler.Finalize();

  // The metric never existed: windows evaluated, nothing fired.
  EXPECT_GE(watchdog.windows_evaluated(), 3u);
  EXPECT_EQ(watchdog.alerts(), 0u);
}

TEST_F(WatchdogWindowTest, FatalAlertsCountAndLandInTheFlightRecorder) {
  Gauge* depth = registry_.GetGauge("q.depth");
  depth->Set(100);
  FlightRecorder fr;
  SloWatchdog watchdog;
  SloRule rule;
  rule.name = "overload";
  rule.metric = "q.depth";
  rule.pred = SloRule::Pred::kGe;
  rule.threshold = 50;
  rule.fatal = true;
  watchdog.AddRule(rule);
  watchdog.SetMetrics(&registry_);
  watchdog.set_flight_recorder(&fr);

  TimeSeriesSampler sampler(&sim_, &registry_, {sim::Ms(1), 4096});
  sampler.set_watchdog(&watchdog);
  sampler.Start();
  sim_.Schedule(sim::Ms(1) + sim::Us(10), [&]() {});
  sim_.Run();
  sampler.Finalize();

  EXPECT_GE(watchdog.fatal_alerts(), 1u);
  EXPECT_EQ(registry_.FindCounter("obs.watchdog.fatal_alerts")->value(), 1u);
  std::vector<FlightRecorder::Entry> entries = fr.Snapshot();
  ASSERT_GE(entries.size(), 1u);
  EXPECT_EQ(entries[0].category, "watchdog");
  EXPECT_NE(entries[0].message.find("overload"), std::string::npos);
  EXPECT_NE(entries[0].message.find("[fatal]"), std::string::npos);
}

TEST_F(WatchdogWindowTest, AppendJsonIsValidAndCarriesRuleState) {
  Gauge* wa = registry_.GetGauge("ftl.write_amp");
  wa->Set(3.0);
  SloWatchdog watchdog;
  SloRule rule;
  rule.name = "cliff";
  rule.metric = "ftl.write_amp";
  rule.pred = SloRule::Pred::kGt;
  rule.threshold = 1.5;
  watchdog.AddRule(rule);

  TimeSeriesSampler sampler(&sim_, &registry_, {sim::Ms(1), 4096});
  sampler.set_watchdog(&watchdog);
  sampler.Start();
  sim_.Schedule(sim::Ms(2) + sim::Us(10), [&]() {});
  sim_.Run();
  sampler.Finalize();

  // The sampler's export embeds the watchdog block when one is attached.
  std::string json;
  sampler.AppendJson(&json);
  std::string error;
  ASSERT_TRUE(IsValidJson(json, &error)) << error;
  EXPECT_NE(json.find("\"watchdog\""), std::string::npos);
  EXPECT_NE(json.find("\"cliff\""), std::string::npos);
  EXPECT_NE(json.find("\"alerts\": 1"), std::string::npos);
}

}  // namespace
}  // namespace xssd::obs
