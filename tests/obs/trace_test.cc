#include "obs/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <string>

#include "obs/json.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace xssd::obs {
namespace {

TEST(IsValidJson, AcceptsAndRejectsTheObviousCases) {
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson("[1, 2.5, -3e2, \"s\", true, false, null]"));
  EXPECT_TRUE(IsValidJson("{\"a\": {\"b\": [\"\\u00e9\", \"\\n\"]}}"));
  std::string error;
  EXPECT_FALSE(IsValidJson("{", &error));
  EXPECT_FALSE(IsValidJson("{\"a\": 1,}", &error));
  EXPECT_FALSE(IsValidJson("[1 2]", &error));
  EXPECT_FALSE(IsValidJson("01", &error));
  EXPECT_FALSE(IsValidJson("\"unterminated", &error));
  EXPECT_FALSE(IsValidJson("{} trailing", &error));
  EXPECT_NE(error.find("invalid JSON"), std::string::npos);
}

TEST(ChromeTraceWriter, EmptyTraceIsValidJson) {
  ChromeTraceWriter writer;
  std::string text = writer.ToString();
  std::string error;
  EXPECT_TRUE(IsValidJson(text, &error)) << error;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTraceWriter, RecordsSimulatorEventsAsValidJson) {
  sim::Simulator sim;
  ChromeTraceWriter writer;
  writer.BeginProcess("run-a");
  sim.set_trace_sink(&writer);

  int fired = 0;
  for (int i = 0; i < 20; ++i) {
    sim.Schedule(sim::Us(i), [&] { ++fired; });
  }
  sim.Run();
  sim.set_trace_sink(nullptr);

  EXPECT_EQ(fired, 20);
  // Default options: one complete ('X') event per fired simulator event.
  EXPECT_EQ(writer.event_count(), 20u);
  EXPECT_EQ(writer.dropped(), 0u);

  std::string text = writer.ToString();
  std::string error;
  ASSERT_TRUE(IsValidJson(text, &error)) << error;
  EXPECT_NE(text.find("\"run-a\""), std::string::npos);
}

TEST(ChromeTraceWriter, ProcessGroupsSeparateRuns) {
  ChromeTraceWriter writer;
  uint32_t pid_a = writer.BeginProcess("first-run");
  uint32_t pid_b = writer.BeginProcess("second-run");
  EXPECT_NE(pid_a, pid_b);
  std::string text = writer.ToString();
  std::string error;
  ASSERT_TRUE(IsValidJson(text, &error)) << error;
  EXPECT_NE(text.find("\"first-run\""), std::string::npos);
  EXPECT_NE(text.find("\"second-run\""), std::string::npos);
}

TEST(ChromeTraceWriter, InstantAndCounterSamplesAreRecorded) {
  ChromeTraceWriter writer;
  writer.BeginProcess("markers");
  writer.OnInstant("gc.start", sim::Us(5));
  writer.OnCounterSample("queue_depth", sim::Us(6), 3.5);
  std::string text = writer.ToString();
  std::string error;
  ASSERT_TRUE(IsValidJson(text, &error)) << error;
  EXPECT_NE(text.find("\"gc.start\""), std::string::npos);
  EXPECT_NE(text.find("\"queue_depth\""), std::string::npos);
}

TEST(ChromeTraceWriter, NamesNeedingEscapesStayWellFormed) {
  ChromeTraceWriter writer;
  writer.BeginProcess("quote\"back\\slash\nnewline");
  writer.OnInstant("tab\there", 0);
  std::string text = writer.ToString();
  std::string error;
  EXPECT_TRUE(IsValidJson(text, &error)) << error;
}

TEST(ChromeTraceWriter, CapsBufferAndCountsDrops) {
  ChromeTraceOptions options;
  options.max_events = 8;
  ChromeTraceWriter writer(options);
  writer.BeginProcess("capped");

  sim::Simulator sim;
  sim.set_trace_sink(&writer);
  for (int i = 0; i < 100; ++i) {
    sim.Schedule(sim::Us(i), [] {});
  }
  sim.Run();
  sim.set_trace_sink(nullptr);

  EXPECT_LE(writer.event_count(), 8u);
  EXPECT_GT(writer.dropped(), 0u);
  // A truncated recording still renders a loadable document.
  std::string text = writer.ToString();
  std::string error;
  EXPECT_TRUE(IsValidJson(text, &error)) << error;
}

TEST(ChromeTraceWriter, WriteFileRoundTrips) {
  ChromeTraceWriter writer;
  writer.BeginProcess("file-run");
  writer.OnInstant("marker", sim::Us(1));
  std::string path = ::testing::TempDir() + "/xssd_trace_test.json";
  ASSERT_TRUE(writer.WriteFile(path).ok());

  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string error;
  EXPECT_TRUE(IsValidJson(text, &error)) << error;
  EXPECT_NE(text.find("\"file-run\""), std::string::npos);
}

}  // namespace
}  // namespace xssd::obs
