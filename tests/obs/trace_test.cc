#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "obs/json.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace xssd::obs {
namespace {

TEST(IsValidJson, AcceptsAndRejectsTheObviousCases) {
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson("[1, 2.5, -3e2, \"s\", true, false, null]"));
  EXPECT_TRUE(IsValidJson("{\"a\": {\"b\": [\"\\u00e9\", \"\\n\"]}}"));
  std::string error;
  EXPECT_FALSE(IsValidJson("{", &error));
  EXPECT_FALSE(IsValidJson("{\"a\": 1,}", &error));
  EXPECT_FALSE(IsValidJson("[1 2]", &error));
  EXPECT_FALSE(IsValidJson("01", &error));
  EXPECT_FALSE(IsValidJson("\"unterminated", &error));
  EXPECT_FALSE(IsValidJson("{} trailing", &error));
  EXPECT_NE(error.find("invalid JSON"), std::string::npos);
}

TEST(ChromeTraceWriter, EmptyTraceIsValidJson) {
  ChromeTraceWriter writer;
  std::string text = writer.ToString();
  std::string error;
  EXPECT_TRUE(IsValidJson(text, &error)) << error;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTraceWriter, RecordsSimulatorEventsAsValidJson) {
  sim::Simulator sim;
  ChromeTraceWriter writer;
  writer.BeginProcess("run-a");
  sim.set_trace_sink(&writer);

  int fired = 0;
  for (int i = 0; i < 20; ++i) {
    sim.Schedule(sim::Us(i), [&] { ++fired; });
  }
  sim.Run();
  sim.set_trace_sink(nullptr);

  EXPECT_EQ(fired, 20);
  // Default options: one complete ('X') event per fired simulator event.
  EXPECT_EQ(writer.event_count(), 20u);
  EXPECT_EQ(writer.dropped(), 0u);

  std::string text = writer.ToString();
  std::string error;
  ASSERT_TRUE(IsValidJson(text, &error)) << error;
  EXPECT_NE(text.find("\"run-a\""), std::string::npos);
}

TEST(ChromeTraceWriter, ProcessGroupsSeparateRuns) {
  ChromeTraceWriter writer;
  uint32_t pid_a = writer.BeginProcess("first-run");
  uint32_t pid_b = writer.BeginProcess("second-run");
  EXPECT_NE(pid_a, pid_b);
  std::string text = writer.ToString();
  std::string error;
  ASSERT_TRUE(IsValidJson(text, &error)) << error;
  EXPECT_NE(text.find("\"first-run\""), std::string::npos);
  EXPECT_NE(text.find("\"second-run\""), std::string::npos);
}

TEST(ChromeTraceWriter, InstantAndCounterSamplesAreRecorded) {
  ChromeTraceWriter writer;
  writer.BeginProcess("markers");
  writer.OnInstant("gc.start", sim::Us(5));
  writer.OnCounterSample("queue_depth", sim::Us(6), 3.5);
  std::string text = writer.ToString();
  std::string error;
  ASSERT_TRUE(IsValidJson(text, &error)) << error;
  EXPECT_NE(text.find("\"gc.start\""), std::string::npos);
  EXPECT_NE(text.find("\"queue_depth\""), std::string::npos);
}

TEST(ChromeTraceWriter, NamesNeedingEscapesStayWellFormed) {
  ChromeTraceWriter writer;
  writer.BeginProcess("quote\"back\\slash\nnewline");
  writer.OnInstant("tab\there", 0);
  std::string text = writer.ToString();
  std::string error;
  EXPECT_TRUE(IsValidJson(text, &error)) << error;
}

TEST(ChromeTraceWriter, CapsBufferAndCountsDrops) {
  ChromeTraceOptions options;
  options.max_events = 8;
  ChromeTraceWriter writer(options);
  writer.BeginProcess("capped");

  sim::Simulator sim;
  sim.set_trace_sink(&writer);
  for (int i = 0; i < 100; ++i) {
    sim.Schedule(sim::Us(i), [] {});
  }
  sim.Run();
  sim.set_trace_sink(nullptr);

  EXPECT_LE(writer.event_count(), 8u);
  EXPECT_GT(writer.dropped(), 0u);
  // A truncated recording still renders a loadable document.
  std::string text = writer.ToString();
  std::string error;
  EXPECT_TRUE(IsValidJson(text, &error)) << error;
}

/// Pulls the `"id": N` values of every flow event with the given phase
/// ('s' or 'f') and category out of a rendered trace document.
std::vector<uint64_t> FlowIds(const std::string& text, char phase,
                              const std::string& cat) {
  std::vector<uint64_t> ids;
  std::string phase_marker = std::string("\"ph\": \"") + phase + "\"";
  std::string cat_marker = "\"cat\": \"" + cat + "\"";
  size_t pos = 0;
  while ((pos = text.find('\n', pos)) != std::string::npos) {
    size_t end = text.find('\n', pos + 1);
    std::string line = text.substr(
        pos + 1, end == std::string::npos ? std::string::npos : end - pos - 1);
    pos += 1;
    if (line.find(phase_marker) == std::string::npos) continue;
    if (line.find(cat_marker) == std::string::npos) continue;
    size_t id_at = line.find("\"id\": ");
    if (id_at == std::string::npos) continue;
    ids.push_back(std::strtoull(line.c_str() + id_at + 6, nullptr, 10));
  }
  return ids;
}

TEST(ChromeTraceWriter, FlowIdsStayUniqueAcrossProcessGroups) {
  // Two back-to-back simulator runs share one writer. Each fresh simulator
  // restarts its event `seq` at 0, so keying arrows by seq would splice
  // run B's arrows onto run A's events; writer-global flow ids must keep
  // every schedule→fire pair distinct.
  ChromeTraceOptions options;
  options.emit_flow = true;
  ChromeTraceWriter writer(options);
  for (const char* run : {"run-a", "run-b"}) {
    writer.BeginProcess(run);
    sim::Simulator sim;
    sim.set_trace_sink(&writer);
    for (int i = 0; i < 10; ++i) {
      sim.Schedule(sim::Us(i), [] {});
    }
    sim.Run();
    sim.set_trace_sink(nullptr);
  }

  std::string text = writer.ToString();
  std::string error;
  ASSERT_TRUE(IsValidJson(text, &error)) << error;

  std::vector<uint64_t> starts = FlowIds(text, 's', "sim");
  std::vector<uint64_t> finishes = FlowIds(text, 'f', "sim");
  ASSERT_EQ(starts.size(), 20u);
  ASSERT_EQ(finishes.size(), 20u);
  std::set<uint64_t> unique_starts(starts.begin(), starts.end());
  EXPECT_EQ(unique_starts.size(), starts.size());
  // Every arrow terminates at the start it was minted for.
  std::set<uint64_t> unique_finishes(finishes.begin(), finishes.end());
  EXPECT_EQ(unique_finishes, unique_starts);
}

TEST(ChromeTraceWriter, SpanFlowsUseTheirOwnBindingDomain) {
  ChromeTraceOptions options;
  options.emit_flow = true;
  ChromeTraceWriter writer(options);
  writer.BeginProcess("spans");
  sim::Simulator sim;
  sim.set_trace_sink(&writer);
  sim.Schedule(sim::Us(1), [] {});
  sim.Run();
  sim.set_trace_sink(nullptr);
  // Span id 1 deliberately collides with the first dispatch flow id; the
  // "span" category keeps the two arrow id spaces apart.
  writer.EmitSpan("dev/append", sim::Us(2), sim::Us(9), 1);

  std::string text = writer.ToString();
  std::string error;
  ASSERT_TRUE(IsValidJson(text, &error)) << error;
  EXPECT_EQ(FlowIds(text, 's', "span"), std::vector<uint64_t>{1});
  EXPECT_EQ(FlowIds(text, 'f', "span"), std::vector<uint64_t>{1});
  EXPECT_EQ(FlowIds(text, 's', "sim"), std::vector<uint64_t>{1});
  EXPECT_NE(text.find("\"args\": {\"span\": 1}"), std::string::npos);
  EXPECT_NE(text.find("\"dev/append\""), std::string::npos);
}

TEST(ChromeTraceWriter, WriteFileRoundTrips) {
  ChromeTraceWriter writer;
  writer.BeginProcess("file-run");
  writer.OnInstant("marker", sim::Us(1));
  std::string path = ::testing::TempDir() + "/xssd_trace_test.json";
  ASSERT_TRUE(writer.WriteFile(path).ok());

  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string error;
  EXPECT_TRUE(IsValidJson(text, &error)) << error;
  EXPECT_NE(text.find("\"file-run\""), std::string::npos);
}

}  // namespace
}  // namespace xssd::obs
