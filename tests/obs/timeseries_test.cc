#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace xssd::obs {
namespace {

TEST(TimeSeriesSampler, PerWindowCounterDeltas) {
  sim::Simulator sim;
  MetricsRegistry registry;
  Counter* ops = registry.GetCounter("t.ops");
  TimeSeriesSampler sampler(&sim, &registry, {sim::Ms(1), 4096});
  sampler.Start();

  // 3 bumps in window 0, 1 in window 1, none in window 2.
  sim.Schedule(sim::Us(100), [&]() { ops->Add(); });
  sim.Schedule(sim::Us(200), [&]() { ops->Add(); });
  sim.Schedule(sim::Us(900), [&]() { ops->Add(); });
  sim.Schedule(sim::Us(1500), [&]() { ops->Add(); });
  sim.Schedule(sim::Us(2800), [&]() {});  // advance past window 2's start
  sim.Run();
  sampler.Finalize();

  const auto& series = sampler.counter_series().at("t.ops");
  ASSERT_GE(series.values.size(), 3u);
  EXPECT_EQ(series.first_window, 0u);
  EXPECT_DOUBLE_EQ(series.values[0], 3.0);
  EXPECT_DOUBLE_EQ(series.values[1], 1.0);
  EXPECT_DOUBLE_EQ(series.values[2], 0.0);
}

TEST(TimeSeriesSampler, WindowBoundaryClosesBeforeTheBoundaryEvent) {
  sim::Simulator sim;
  MetricsRegistry registry;
  Counter* ops = registry.GetCounter("t.ops");
  TimeSeriesSampler sampler(&sim, &registry, {sim::Ms(1), 4096});
  sampler.Start();

  // An event exactly at the boundary belongs to the NEXT window: the
  // window [0, 1ms) closes before the event at t=1ms executes.
  sim.Schedule(sim::Ms(1), [&]() { ops->Add(); });
  sim.Schedule(sim::Ms(2) + sim::Us(1), [&]() {});
  sim.Run();
  sampler.Finalize();

  const auto& series = sampler.counter_series().at("t.ops");
  ASSERT_GE(series.values.size(), 2u);
  EXPECT_DOUBLE_EQ(series.values[0], 0.0);
  EXPECT_DOUBLE_EQ(series.values[1], 1.0);
}

TEST(TimeSeriesSampler, IdleGapBatchClosesEmptyWindows) {
  sim::Simulator sim;
  MetricsRegistry registry;
  Gauge* depth = registry.GetGauge("t.depth");
  depth->Set(7);
  TimeSeriesSampler sampler(&sim, &registry, {sim::Ms(1), 4096});
  sampler.Start();

  // One event 10 ms out: the single time jump must close windows 0..9 in
  // one observer call, each carrying the gauge value frozen across the
  // gap (gauges cannot change while no events run).
  sim.Schedule(sim::Ms(10), [&]() { depth->Set(9); });
  sim.Run();
  sampler.Finalize();

  const auto& series = sampler.gauge_series().at("t.depth");
  ASSERT_GE(series.values.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(series.values[i], 7.0) << "window " << i;
  }
}

TEST(TimeSeriesSampler, ResetSafeCounterDelta) {
  sim::Simulator sim;
  MetricsRegistry registry;
  Counter* ops = registry.GetCounter("t.ops");
  TimeSeriesSampler sampler(&sim, &registry, {sim::Ms(1), 4096});
  sampler.Start();

  sim.Schedule(sim::Us(100), [&]() { ops->Add(100); });
  // Mid-run registry reset: the next window's delta must be the
  // post-reset accumulation (5), not a wrapped negative.
  sim.Schedule(sim::Us(1200), [&]() {
    registry.Reset();
    ops->Add(5);
  });
  sim.Schedule(sim::Us(2100), [&]() {});
  sim.Run();
  sampler.Finalize();

  const auto& series = sampler.counter_series().at("t.ops");
  ASSERT_GE(series.values.size(), 2u);
  EXPECT_DOUBLE_EQ(series.values[0], 100.0);
  EXPECT_DOUBLE_EQ(series.values[1], 5.0);
}

TEST(TimeSeriesSampler, PreStartHistoryIsNotChargedToWindowZero) {
  sim::Simulator sim;
  MetricsRegistry registry;
  Counter* ops = registry.GetCounter("t.ops");
  ops->Add(5000);  // history from before the sampler existed
  TimeSeriesSampler sampler(&sim, &registry, {sim::Ms(1), 4096});
  sampler.Start();
  sim.Schedule(sim::Us(100), [&]() { ops->Add(2); });
  sim.Schedule(sim::Us(1100), [&]() {});
  sim.Run();
  sampler.Finalize();

  const auto& series = sampler.counter_series().at("t.ops");
  ASSERT_GE(series.values.size(), 1u);
  EXPECT_DOUBLE_EQ(series.values[0], 2.0);
}

TEST(TimeSeriesSampler, MidRunRegistrationJoinsAtCurrentWindow) {
  sim::Simulator sim;
  MetricsRegistry registry;
  registry.GetCounter("t.early");
  TimeSeriesSampler sampler(&sim, &registry, {sim::Ms(1), 4096});
  sampler.Start();

  Counter* late = nullptr;
  sim.Schedule(sim::Ms(2) + sim::Us(500), [&]() {
    late = registry.GetCounter("t.late");
    late->Add(3);
  });
  sim.Schedule(sim::Ms(3) + sim::Us(500), [&]() {});
  sim.Run();
  sampler.Finalize();

  const auto& series = sampler.counter_series().at("t.late");
  EXPECT_EQ(series.first_window, 2u);
  ASSERT_GE(series.values.size(), 1u);
  EXPECT_DOUBLE_EQ(series.values[0], 3.0);
}

TEST(TimeSeriesSampler, BoundedRingEvictsOldestWindows) {
  sim::Simulator sim;
  MetricsRegistry registry;
  Counter* ops = registry.GetCounter("t.ops");
  TimeSeriesSampler sampler(&sim, &registry, {sim::Ms(1), 3});
  sampler.Start();

  for (int w = 0; w < 8; ++w) {
    sim.Schedule(sim::Ms(w) + sim::Us(500),
                 [ops, w]() { ops->Add(static_cast<uint64_t>(w) + 1); });
  }
  sim.Schedule(sim::Ms(8) + sim::Us(1), [&]() {});
  sim.Run();
  sampler.Finalize();

  const auto& series = sampler.counter_series().at("t.ops");
  ASSERT_EQ(series.values.size(), 3u);
  EXPECT_GT(series.evicted, 0u);
  EXPECT_GT(sampler.evicted_values(), 0u);
  // Nine windows closed (0..7 carrying deltas 1..8, plus the trailing
  // partial window 8 with delta 0); the ring keeps the last three, and
  // first_window + position recovers the absolute window index.
  EXPECT_EQ(series.first_window, 6u);
  EXPECT_DOUBLE_EQ(series.values[0], 7.0);
  EXPECT_DOUBLE_EQ(series.values[1], 8.0);
  EXPECT_DOUBLE_EQ(series.values[2], 0.0);
}

TEST(TimeSeriesSampler, FinalizeClosesTrailingPartialWindow) {
  sim::Simulator sim;
  MetricsRegistry registry;
  Counter* ops = registry.GetCounter("t.ops");
  TimeSeriesSampler sampler(&sim, &registry, {sim::Ms(1), 4096});
  sampler.Start();

  sim.Schedule(sim::Ms(1) + sim::Us(500), [&]() { ops->Add(9); });
  sim.Run();
  sampler.Finalize();
  EXPECT_TRUE(sampler.finalized());

  // Window 0 full (delta 0 — the bump is at 1.5ms), window 1 partial.
  const auto& series = sampler.counter_series().at("t.ops");
  ASSERT_EQ(series.values.size(), 2u);
  EXPECT_DOUBLE_EQ(series.values[0], 0.0);
  EXPECT_DOUBLE_EQ(series.values[1], 9.0);
  EXPECT_EQ(sampler.end_time(), sim::Ms(1) + sim::Us(500));
}

TEST(TimeSeriesSampler, SimulatorTeardownFinalizesTheSampler) {
  MetricsRegistry registry;
  Counter* ops = registry.GetCounter("t.ops");
  std::unique_ptr<TimeSeriesSampler> sampler;
  {
    sim::Simulator sim;
    sampler =
        std::make_unique<TimeSeriesSampler>(&sim, &registry,
                                            TimeSeriesOptions{sim::Ms(1), 4096});
    sampler->Start();
    sim.Schedule(sim::Ms(2) + sim::Us(100), [&]() { ops->Add(4); });
    sim.Run();
    // sim destroyed here, before the sampler: teardown must finalize.
  }
  EXPECT_TRUE(sampler->finalized());
  EXPECT_GE(sampler->windows(), 3u);
}

TEST(TimeSeriesSampler, LatencyWindowsCarryClampedPercentiles) {
  sim::Simulator sim;
  MetricsRegistry registry;
  LatencyRecorder* lat = registry.GetLatency("t.lat_ns");
  TimeSeriesSampler sampler(&sim, &registry, {sim::Ms(1), 4096});
  sampler.Start();

  sim.Schedule(sim::Us(100), [&]() {
    lat->Add(1000);
    lat->Add(2000);
    lat->Add(3000);
  });
  sim.Schedule(sim::Us(1100), [&]() { lat->Add(50000); });
  sim.Schedule(sim::Us(2100), [&]() {});
  sim.Run();
  sampler.Finalize();

  const auto& series = sampler.latency_series().at("t.lat_ns");
  ASSERT_GE(series.windows.size(), 2u);
  EXPECT_EQ(series.windows[0].count, 3u);
  EXPECT_DOUBLE_EQ(series.windows[0].min, 1000.0);
  EXPECT_DOUBLE_EQ(series.windows[0].max, 3000.0);
  EXPECT_GE(series.windows[0].p99, 1000.0);
  EXPECT_LE(series.windows[0].p99, 3000.0);
  // The second window must not inherit the first's samples.
  EXPECT_EQ(series.windows[1].count, 1u);
  EXPECT_DOUBLE_EQ(series.windows[1].min, 50000.0);
  EXPECT_DOUBLE_EQ(series.windows[1].max, 50000.0);
}

TEST(TimeSeriesSampler, LastValueResolvesEveryKindAndStat) {
  sim::Simulator sim;
  MetricsRegistry registry;
  Counter* ops = registry.GetCounter("t.ops");
  Gauge* depth = registry.GetGauge("t.depth");
  LatencyRecorder* lat = registry.GetLatency("t.lat_ns");
  TimeSeriesSampler sampler(&sim, &registry, {sim::Ms(1), 4096});
  sampler.Start();
  sim.Schedule(sim::Us(100), [&]() {
    ops->Add(4);
    depth->Set(17);
    lat->Add(640);
  });
  sim.Schedule(sim::Us(1100), [&]() {});
  sim.Run();
  sampler.Finalize();

  double v = 0;
  EXPECT_TRUE(sampler.LastValue("t.ops", "", &v));
  EXPECT_TRUE(sampler.LastValue("t.ops", "delta", &v));
  EXPECT_FALSE(sampler.LastValue("t.ops", "p99", &v));
  EXPECT_TRUE(sampler.LastValue("t.depth", "value", &v));
  EXPECT_DOUBLE_EQ(v, 17.0);
  EXPECT_TRUE(sampler.LastValue("t.lat_ns", "count", &v));
  EXPECT_TRUE(sampler.LastValue("t.lat_ns", "p999", &v));
  // Latency series refuse a default stat; unknown names refuse too.
  EXPECT_FALSE(sampler.LastValue("t.lat_ns", "", &v));
  EXPECT_FALSE(sampler.LastValue("t.absent", "", &v));
}

TEST(TimeSeriesSampler, ExportIsValidAndDeterministicJson) {
  auto run = [](std::string* out) {
    sim::Simulator sim;
    MetricsRegistry registry;
    Counter* ops = registry.GetCounter("t.ops");
    Gauge* depth = registry.GetGauge("t.depth");
    LatencyRecorder* lat = registry.GetLatency("t.lat_ns");
    sim::Rng rng(7);
    TimeSeriesSampler sampler(&sim, &registry, {sim::Ms(1), 4096});
    sampler.Start();
    for (int i = 0; i < 200; ++i) {
      sim.Schedule(rng.UniformRange(1, sim::Ms(5)), [&, i]() {
        ops->Add();
        depth->Set(i);
        lat->Add(static_cast<double>(100 + i));
      });
    }
    sim.Run();
    sampler.Finalize();
    sampler.AppendJson(out);
  };
  std::string a;
  std::string b;
  run(&a);
  run(&b);
  EXPECT_EQ(a, b);
  std::string error;
  EXPECT_TRUE(IsValidJson(a, &error)) << error;
  EXPECT_NE(a.find("\"t.ops\""), std::string::npos);
  EXPECT_NE(a.find("\"t.lat_ns\""), std::string::npos);
}

TEST(TimeSeriesSampler, SamplingDoesNotPerturbTheEventSequence) {
  auto run = [](bool sampled, uint64_t* events, sim::SimTime* end,
                uint64_t* ops_total) {
    sim::Simulator sim;
    MetricsRegistry registry;
    Counter* ops = registry.GetCounter("t.ops");
    sim::Rng rng(42);
    TimeSeriesSampler sampler(&sim, &registry, {sim::Us(100), 4096});
    if (sampled) sampler.Start();
    // Random self-rescheduling chain, RNG-coupled: any extra event or
    // reordering would change the draw sequence and diverge the totals.
    struct Chain {
      sim::Simulator* sim;
      sim::Rng* rng;
      Counter* ops;
      int budget = 500;
      void operator()() {
        if (budget-- <= 0) return;
        ops->Add(rng->Uniform(3) + 1);
        sim->Schedule(rng->UniformRange(10, 5000), *this);
      }
    };
    sim.Schedule(1, Chain{&sim, &rng, ops});
    sim.Run();
    *events = sim.executed_events();
    *end = sim.Now();
    *ops_total = ops->value();
  };
  uint64_t ev_off = 0;
  uint64_t ev_on = 0;
  uint64_t ops_off = 0;
  uint64_t ops_on = 0;
  sim::SimTime end_off = 0;
  sim::SimTime end_on = 0;
  run(false, &ev_off, &end_off, &ops_off);
  run(true, &ev_on, &end_on, &ops_on);
  EXPECT_EQ(ev_off, ev_on);
  EXPECT_EQ(end_off, end_on);
  EXPECT_EQ(ops_off, ops_on);
}

}  // namespace
}  // namespace xssd::obs
