#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "host/node.h"
#include "host/xcalls.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace xssd::obs {
namespace {

core::VillarsConfig SmallConfig() {
  core::VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 128;
  return config;
}

/// One full instrumented run: a StorageNode pushes a log stream through the
/// CMB fast path, syncs, then idles long enough for destage + flash traffic
/// to complete. Returns the registry's JSON snapshot.
std::string SnapshotOfRun(const std::string& prefix = "") {
  sim::Simulator sim;
  MetricsRegistry registry;
  host::StorageNode node(&sim, SmallConfig(), pcie::FabricConfig{}, "det");
  EXPECT_TRUE(node.Init().ok());
  node.EnableMetrics(&registry, prefix);

  std::vector<uint8_t> entry(4096, 0xAB);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(host::x_pwrite(sim, node.client(), entry.data(), entry.size()),
              static_cast<ssize_t>(entry.size()));
  }
  EXPECT_EQ(host::x_fsync(sim, node.client()), 0);
  sim.RunFor(sim::Ms(10));

  return JsonExporter(&registry).ToString();
}

TEST(SnapshotDeterminism, IdenticalRunsProduceIdenticalSnapshots) {
  std::string first = SnapshotOfRun();
  std::string second = SnapshotOfRun();
  EXPECT_EQ(first, second);
}

TEST(SnapshotDeterminism, SnapshotIsValidJsonAndCoversDeviceNamespaces) {
  std::string snapshot = SnapshotOfRun();
  std::string error;
  ASSERT_TRUE(IsValidJson(snapshot, &error)) << error;
  // The instrumented hot paths must all have reported in.
  for (const char* key :
       {"\"cmb.append_bytes\"", "\"cmb.persisted_bytes\"",
        "\"destage.pages_written\"", "\"destage.stream_bytes\"",
        "\"flash.programs\"", "\"ftl.host_writes\"", "\"nvme.commands\"",
        "\"pcie.host_write_bytes\""}) {
    EXPECT_NE(snapshot.find(key), std::string::npos)
        << "missing " << key << " in:\n"
        << snapshot;
  }
}

TEST(SnapshotDeterminism, WorkloadActuallyMovedBytes) {
  sim::Simulator sim;
  MetricsRegistry registry;
  host::StorageNode node(&sim, SmallConfig(), pcie::FabricConfig{}, "det");
  ASSERT_TRUE(node.Init().ok());
  node.EnableMetrics(&registry);

  std::vector<uint8_t> entry(4096, 0xCD);
  for (int i = 0; i < 64; ++i) {
    host::x_pwrite(sim, node.client(), entry.data(), entry.size());
  }
  host::x_fsync(sim, node.client());
  sim.RunFor(sim::Ms(10));

  const Counter* append = registry.FindCounter("cmb.append_bytes");
  ASSERT_NE(append, nullptr);
  EXPECT_EQ(append->value(), 64u * 4096);
  const Counter* pages = registry.FindCounter("destage.pages_written");
  ASSERT_NE(pages, nullptr);
  EXPECT_GT(pages->value(), 0u);
  const Counter* programs = registry.FindCounter("flash.programs");
  ASSERT_NE(programs, nullptr);
  EXPECT_GT(programs->value(), 0u);
}

TEST(SnapshotDeterminism, PrefixSeparatesNodes) {
  std::string snapshot = SnapshotOfRun("pri.");
  std::string error;
  ASSERT_TRUE(IsValidJson(snapshot, &error)) << error;
  EXPECT_NE(snapshot.find("\"pri.cmb.append_bytes\""), std::string::npos);
  // No unprefixed device names leak in.
  EXPECT_EQ(snapshot.find("\"cmb.append_bytes\""), std::string::npos);
}

}  // namespace
}  // namespace xssd::obs
