#include "obs/span.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "host/node.h"
#include "host/xcalls.h"
#include "obs/critical_path.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace xssd::obs {
namespace {

core::VillarsConfig SmallConfig() {
  core::VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 128;
  return config;
}

TEST(SpanRecorder, BuildsATreeWithStampedVirtualTimes) {
  sim::Simulator sim;
  SpanRecorder spans(&sim);
  uint16_t node = spans.InternNode("dev");
  EXPECT_EQ(spans.NodeTag(node), "dev");
  EXPECT_EQ(spans.InternNode("dev"), node);  // interning is idempotent

  SpanContext root = spans.StartTrace("append", node, 0, 100);
  SpanContext child;
  sim.Schedule(sim::Us(2), [&] {
    child = spans.StartSpan(Stage::kCmbStage, node, root);
    spans.SetRange(child, 0, 100);
  });
  sim.Schedule(sim::Us(5), [&] { spans.EndSpan(child); });
  sim.Schedule(sim::Us(7), [&] { spans.EndSpan(root); });
  sim.Run();

  ASSERT_EQ(spans.span_count(), 2u);
  const Span* r = spans.Find(root.span_id);
  const Span* c = spans.Find(child.span_id);
  ASSERT_NE(r, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(r->stage, Stage::kRequest);
  EXPECT_STREQ(r->name, "append");
  EXPECT_EQ(r->start, 0u);
  EXPECT_EQ(r->end, sim::Us(7));
  EXPECT_TRUE(r->closed);
  EXPECT_EQ(c->parent, root.span_id);
  EXPECT_EQ(c->trace_id, root.trace_id);
  EXPECT_EQ(c->stage, Stage::kCmbStage);
  EXPECT_EQ(c->start, sim::Us(2));
  EXPECT_EQ(c->end, sim::Us(5));
  EXPECT_EQ(c->offset_begin, 0u);
  EXPECT_EQ(c->offset_end, 100u);
}

TEST(SpanRecorder, OrphanChildGetsItsOwnTraceId) {
  sim::Simulator sim;
  SpanRecorder spans(&sim);
  uint16_t node = spans.InternNode("dev");
  SpanContext root = spans.StartTrace("append", node, 0, 64);
  // No ambient context (timer-driven work): the child cannot name a parent
  // and must not be silently glued onto an unrelated trace.
  SpanContext orphan = spans.StartSpan(Stage::kDestagePage, node, {});
  EXPECT_NE(spans.Find(orphan.span_id)->trace_id, root.trace_id);
  EXPECT_EQ(spans.Find(orphan.span_id)->parent, 0u);
}

TEST(SpanRecorder, EndIsClampedAndIdempotent) {
  sim::Simulator sim;
  SpanRecorder spans(&sim);
  uint16_t node = spans.InternNode("dev");
  SpanContext ctx;
  sim.Schedule(sim::Us(3), [&] { ctx = spans.StartTrace("read", node, 0, 1); });
  sim.Run();
  spans.EndSpanAt(ctx, sim::Us(1));  // before start: clamps to start
  EXPECT_EQ(spans.Find(ctx.span_id)->end, sim::Us(3));
  spans.EndSpanAt(ctx, sim::Us(9));  // already closed: ignored
  EXPECT_EQ(spans.Find(ctx.span_id)->end, sim::Us(3));
}

TEST(SpanRecorder, ScopedContextRestoresAndToleratesNullRecorder) {
  sim::Simulator sim;
  SpanRecorder spans(&sim);
  uint16_t node = spans.InternNode("dev");
  SpanContext a = spans.StartTrace("append", node, 0, 1);
  SpanContext b = spans.StartTrace("fsync", node, 0, 1);
  spans.set_current(a);
  {
    ScopedContext scope(&spans, b);
    EXPECT_EQ(spans.current().span_id, b.span_id);
    { ScopedContext noop(nullptr, a); }  // must not crash or leak
  }
  EXPECT_EQ(spans.current().span_id, a.span_id);
}

struct WorkloadResult {
  std::string metrics_json;
  std::string breakdown_json;
  size_t span_count = 0;
};

/// Drives a small append+fsync+read workload against one node, optionally
/// with tracing attached (or attached and immediately detached again).
/// Returns the exported metrics snapshot and — when traced — the breakdown
/// JSON, so callers can compare runs byte for byte.
WorkloadResult RunWorkload(bool with_spans, bool enable_then_disable) {
  WorkloadResult out;
  sim::Simulator sim;
  SpanRecorder spans(&sim);
  host::StorageNode node(&sim, SmallConfig(), pcie::FabricConfig{},
                         "span-test");
  EXPECT_TRUE(node.Init().ok());
  MetricsRegistry registry;
  node.EnableMetrics(&registry);
  if (with_spans) node.EnableSpans(&spans, "dev");
  if (enable_then_disable) node.EnableSpans(nullptr, "");

  std::vector<uint8_t> data(3000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  EXPECT_EQ(host::x_pwrite(sim, node.client(), data.data(), data.size()),
            static_cast<ssize_t>(data.size()));
  EXPECT_EQ(host::x_fsync(sim, node.client()), 0);
  std::vector<uint8_t> tail(512);
  EXPECT_EQ(host::x_pread(sim, node.client(), node.driver(), tail.data(),
                          tail.size()),
            static_cast<ssize_t>(tail.size()));
  sim.RunFor(sim::Ms(1));

  if (with_spans && !enable_then_disable) {
    BreakdownReporter reporter("span_test");
    reporter.AddRun("run", spans);
    EXPECT_EQ(reporter.conservation_violations(), 0u);
    out.breakdown_json = reporter.ToJson();
  }
  out.span_count = spans.span_count();
  JsonExporter exporter(&registry);
  out.metrics_json = exporter.ToString();
  return out;
}

TEST(SpanRecorder, WorkloadProducesRootsAndNestedDeviceSpans) {
  sim::Simulator sim;
  SpanRecorder recorder(&sim);
  host::StorageNode node(&sim, SmallConfig(), pcie::FabricConfig{},
                         "span-test");
  ASSERT_TRUE(node.Init().ok());
  node.EnableSpans(&recorder, "dev");
  std::vector<uint8_t> data(3000, 0xAB);
  ASSERT_EQ(host::x_pwrite(sim, node.client(), data.data(), data.size()),
            static_cast<ssize_t>(data.size()));
  ASSERT_EQ(host::x_fsync(sim, node.client()), 0);
  sim.RunFor(sim::Ms(1));

  size_t roots = 0, cmb = 0, destage = 0, flash = 0, polls = 0;
  for (const Span& span : recorder.spans()) {
    EXPECT_TRUE(span.closed) << StageName(span.stage);
    switch (span.stage) {
      case Stage::kRequest:
        ++roots;
        break;
      case Stage::kCmbStage:
        ++cmb;
        // Chunk spans carry the stream extent for offset-based joins.
        EXPECT_GT(span.offset_end, span.offset_begin);
        break;
      case Stage::kDestagePage:
        ++destage;
        break;
      case Stage::kFlashProgram:
        ++flash;
        break;
      case Stage::kHostPoll:
        ++polls;
        break;
      default:
        break;
    }
  }
  EXPECT_GE(roots, 2u);    // append + fsync
  EXPECT_GE(cmb, 1u);      // staged chunks
  EXPECT_GE(destage, 1u);  // at least one page destaged
  EXPECT_GE(flash, 1u);    // its flash program
  EXPECT_GE(polls, 1u);    // fsync credit polling
  // Device spans nest: every flash.program has a destage.page ancestor.
  for (const Span& span : recorder.spans()) {
    if (span.stage != Stage::kFlashProgram) continue;
    ASSERT_NE(span.parent, 0u);
    EXPECT_EQ(recorder.Find(span.parent)->stage, Stage::kDestagePage);
  }
}

TEST(SpanRecorder, BreakdownJsonIsByteIdenticalAcrossIdenticalRuns) {
  WorkloadResult a = RunWorkload(true, false);
  WorkloadResult b = RunWorkload(true, false);
  ASSERT_FALSE(a.breakdown_json.empty());
  EXPECT_EQ(a.breakdown_json, b.breakdown_json);
  std::string error;
  EXPECT_TRUE(IsValidJson(a.breakdown_json, &error)) << error;
}

TEST(SpanRecorder, DisabledTracingAllocatesNothingAndChangesNoCounter) {
  // Same seeded workload three ways: never enabled, enabled, and enabled
  // then detached. Tracing is passive bookkeeping in virtual time, so the
  // metrics snapshots must be byte-identical — spans observe, never
  // perturb.
  WorkloadResult baseline = RunWorkload(false, false);
  EXPECT_EQ(baseline.span_count, 0u);

  WorkloadResult traced = RunWorkload(true, false);
  EXPECT_EQ(baseline.metrics_json, traced.metrics_json);
  EXPECT_GT(traced.span_count, 0u);

  // Detached before any traffic: nothing may be recorded.
  WorkloadResult detached = RunWorkload(true, true);
  EXPECT_EQ(baseline.metrics_json, detached.metrics_json);
  EXPECT_EQ(detached.span_count, 0u);
}

}  // namespace
}  // namespace xssd::obs
