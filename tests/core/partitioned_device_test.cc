#include "core/partitioned_device.h"

#include <gtest/gtest.h>

#include "host/sync.h"
#include "host/xlog_client.h"
#include "nvme/driver.h"

namespace xssd::core {
namespace {

PartitionedConfig TwoTenantConfig() {
  PartitionedConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;

  PartitionConfig tenant_a;
  tenant_a.cmb.ring_bytes = 64 * 1024;
  tenant_a.cmb.queue_bytes = 16 * 1024;
  tenant_a.destage.ring_start_lba = 0;
  tenant_a.destage.ring_lba_count = 32;

  PartitionConfig tenant_b;
  tenant_b.cmb.ring_bytes = 32 * 1024;
  tenant_b.cmb.queue_bytes = 8 * 1024;
  tenant_b.destage.ring_start_lba = 32;  // disjoint destage ring
  tenant_b.destage.ring_lba_count = 32;

  config.partitions = {tenant_a, tenant_b};
  return config;
}

constexpr uint64_t kBar0 = 0xF000'0000ull;
constexpr uint64_t kCmb = 0xE000'0000ull;

class PartitionedTest : public ::testing::Test {
 protected:
  PartitionedTest()
      : fabric_(&sim_, pcie::FabricConfig{}, "fabric"),
        device_(&sim_, &fabric_, TwoTenantConfig(), "mt"),
        driver_(&sim_, &fabric_, &device_.controller(), kBar0) {
    EXPECT_TRUE(device_.Attach(kBar0, kCmb).ok());
    EXPECT_TRUE(driver_.Initialize().ok());
    client_a_ = std::make_unique<host::XLogClient>(
        &sim_, &fabric_, device_.partition_base(0));
    client_b_ = std::make_unique<host::XLogClient>(
        &sim_, &fabric_, device_.partition_base(1));
    EXPECT_TRUE(client_a_->Setup().ok());
    EXPECT_TRUE(client_b_->Setup().ok());
  }

  Status AppendDurableSync(host::XLogClient& client,
                           const std::vector<uint8_t>& data) {
    host::SyncRunner runner(&sim_);
    return runner.Await([&](std::function<void(Status)> done) {
      client.AppendDurable(data.data(), data.size(), std::move(done));
    });
  }

  sim::Simulator sim_;
  pcie::PcieFabric fabric_;
  PartitionedVillars device_;
  nvme::Driver driver_;
  std::unique_ptr<host::XLogClient> client_a_;
  std::unique_ptr<host::XLogClient> client_b_;
};

TEST_F(PartitionedTest, ClientsSeeTheirOwnGeometry) {
  EXPECT_EQ(client_a_->ring_bytes(), 64u * 1024);
  EXPECT_EQ(client_a_->queue_bytes(), 16u * 1024);
  EXPECT_EQ(client_b_->ring_bytes(), 32u * 1024);
  EXPECT_EQ(client_b_->queue_bytes(), 8u * 1024);
}

TEST_F(PartitionedTest, IndependentCreditCounters) {
  std::vector<uint8_t> a(3000, 0xAA), b(1000, 0xBB);
  ASSERT_TRUE(AppendDurableSync(*client_a_, a).ok());
  EXPECT_EQ(device_.cmb(0).local_credit(), 3000u);
  EXPECT_EQ(device_.cmb(1).local_credit(), 0u);  // isolated

  ASSERT_TRUE(AppendDurableSync(*client_b_, b).ok());
  EXPECT_EQ(device_.cmb(0).local_credit(), 3000u);
  EXPECT_EQ(device_.cmb(1).local_credit(), 1000u);
}

TEST_F(PartitionedTest, TenantsDataDoesNotCrossRings) {
  std::vector<uint8_t> a(500, 0xAA), b(500, 0xBB);
  ASSERT_TRUE(AppendDurableSync(*client_a_, a).ok());
  ASSERT_TRUE(AppendDurableSync(*client_b_, b).ok());
  std::vector<uint8_t> out(500);
  device_.cmb(0).CopyOut(0, out.data(), 500);
  EXPECT_EQ(out, a);
  device_.cmb(1).CopyOut(0, out.data(), 500);
  EXPECT_EQ(out, b);
}

TEST_F(PartitionedTest, TenantsDestageToDisjointLbaRanges) {
  std::vector<uint8_t> a(2000, 0xA1), b(2000, 0xB2);
  ASSERT_TRUE(AppendDurableSync(*client_a_, a).ok());
  ASSERT_TRUE(AppendDurableSync(*client_b_, b).ok());
  sim_.RunFor(sim::Ms(2));  // allow threshold destage for both
  EXPECT_EQ(device_.destage(0).destaged(), 2000u);
  EXPECT_EQ(device_.destage(1).destaged(), 2000u);

  // Each tenant reads its own destaged tail via the shared block device.
  std::vector<uint8_t> tail(2000);
  host::SyncRunner runner(&sim_);
  auto read_tail = [&](host::XLogClient& client) {
    return runner.AwaitValue<std::vector<uint8_t>>(
        [&](std::function<void(Status, std::vector<uint8_t>)> done) {
          client.ReadTail(&driver_, 2000, std::move(done));
        });
  };
  auto got_a = read_tail(*client_a_);
  ASSERT_TRUE(got_a.ok());
  EXPECT_EQ(*got_a, a);
  auto got_b = read_tail(*client_b_);
  ASSERT_TRUE(got_b.ok());
  EXPECT_EQ(*got_b, b);
}

TEST_F(PartitionedTest, VendorCommandsTargetPartitionByCdw13) {
  nvme::Command cmd;
  cmd.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdSetReplication);
  cmd.cdw10 = static_cast<uint32_t>(ReplicationProtocol::kLazy);
  cmd.cdw13 = 1;  // tenant B only
  bool got = false;
  nvme::Completion result;
  driver_.Admin(cmd, [&](nvme::Completion cpl) {
    result = cpl;
    got = true;
  });
  sim_.RunWhile([&]() { return got; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(device_.transport(1).protocol(), ReplicationProtocol::kLazy);
  EXPECT_EQ(device_.transport(0).protocol(), ReplicationProtocol::kEager);

  cmd.cdw13 = 9;  // no such partition
  got = false;
  driver_.Admin(cmd, [&](nvme::Completion cpl) {
    result = cpl;
    got = true;
  });
  sim_.RunWhile([&]() { return got; });
  EXPECT_FALSE(result.ok());
}

TEST_F(PartitionedTest, ConcurrentTenantsInterleaveSafely) {
  // Both tenants stream concurrently; bytes stay tenant-local.
  std::vector<uint8_t> a(20000), b(20000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<uint8_t>(i);
    b[i] = static_cast<uint8_t>(i ^ 0xFF);
  }
  bool done_a = false, done_b = false;
  client_a_->AppendDurable(a.data(), a.size(),
                           [&](Status s) { done_a = s.ok(); });
  client_b_->AppendDurable(b.data(), b.size(),
                           [&](Status s) { done_b = s.ok(); });
  sim_.RunWhile([&]() { return done_a && done_b; });
  ASSERT_TRUE(done_a && done_b);

  std::vector<uint8_t> out(20000);
  device_.cmb(0).CopyOut(0, out.data(), out.size());
  EXPECT_EQ(out, a);
  device_.cmb(1).CopyOut(0, out.data(), out.size());
  EXPECT_EQ(out, b);
}

TEST_F(PartitionedTest, BarLayoutIsBackToBack) {
  EXPECT_EQ(device_.partition_base(0), kCmb);
  EXPECT_EQ(device_.partition_base(1),
            kCmb + kCtrlPageBytes + 64 * 1024);
  EXPECT_EQ(device_.cmb_bar_bytes(),
            2 * kCtrlPageBytes + 64 * 1024 + 32 * 1024);
}

}  // namespace
}  // namespace xssd::core
