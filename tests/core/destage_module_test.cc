#include "core/destage_module.h"

#include <gtest/gtest.h>

#include "core/cmb_module.h"
#include "flash/array.h"
#include "ftl/ftl.h"

namespace xssd::core {
namespace {

flash::Geometry SmallGeometry() {
  flash::Geometry g;
  g.channels = 2;
  g.dies_per_channel = 2;
  g.blocks_per_plane = 16;
  g.pages_per_block = 16;
  g.page_bytes = 4096;
  return g;
}

class DestageTest : public ::testing::Test {
 protected:
  DestageTest()
      : array_(&sim_, SmallGeometry(), flash::Timing{}, flash::Reliability{},
               1),
        ftl_(&sim_, &array_, ftl::FtlConfig{}),
        cmb_(&sim_, CmbTestConfig()),
        destage_(&sim_, &ftl_, &cmb_, DestageTestConfig(), /*epoch=*/1) {
    cmb_.SetCreditHook(
        [this](uint64_t credit) { destage_.OnCreditAdvance(credit); });
  }

  static CmbConfig CmbTestConfig() {
    CmbConfig config;
    config.ring_bytes = 64 * 1024;
    config.queue_bytes = 8 * 1024;
    return config;
  }
  static DestageConfig DestageTestConfig() {
    DestageConfig config;
    config.ring_start_lba = 0;
    config.ring_lba_count = 16;
    config.latency_threshold = sim::Us(100);
    return config;
  }

  uint32_t Capacity() { return DestagePayloadCapacity(4096); }

  void WriteStream(uint64_t offset, size_t len, uint8_t fill) {
    // Split on ring wrap, as the host-side store path does.
    std::vector<uint8_t> data(len, fill);
    uint64_t ring_offset = offset % cmb_.ring_bytes();
    size_t first = static_cast<size_t>(
        std::min<uint64_t>(len, cmb_.ring_bytes() - ring_offset));
    cmb_.OnRingWrite(ring_offset, data.data(), first);
    if (first < len) cmb_.OnRingWrite(0, data.data() + first, len - first);
  }

  Result<ParsedDestagePage> ReadRingSlot(uint64_t slot) {
    Status status = Status::Internal("pending");
    std::vector<uint8_t> page;
    ftl_.ReadPage(ftl::IoClass::kConventional, slot,
                  [&](Status s, std::vector<uint8_t> d) {
                    status = s;
                    page = std::move(d);
                  });
    sim_.Run();
    if (!status.ok()) return status;
    return ParseDestagePage(page);
  }

  sim::Simulator sim_;
  flash::Array array_;
  ftl::Ftl ftl_;
  CmbModule cmb_;
  DestageModule destage_;
};

TEST_F(DestageTest, FullPageDestagesImmediately) {
  WriteStream(0, Capacity(), 0xAA);
  sim_.Run();
  EXPECT_EQ(destage_.destaged(), Capacity());
  EXPECT_EQ(destage_.stats().pages_written, 1u);
  EXPECT_EQ(destage_.stats().partial_pages, 0u);

  Result<ParsedDestagePage> page = ReadRingSlot(0);
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page->header.sequence, 0u);
  EXPECT_EQ(page->header.stream_offset, 0u);
  EXPECT_EQ(page->header.epoch, 1u);
  EXPECT_EQ(page->data.size(), Capacity());
  EXPECT_EQ(page->data[0], 0xAA);
}

TEST_F(DestageTest, PartialPageWaitsForLatencyThreshold) {
  WriteStream(0, 100, 0xBB);
  sim_.RunFor(sim::Us(50));
  EXPECT_EQ(destage_.destaged(), 0u);  // below threshold, waiting
  sim_.Run();  // threshold timer fires, partial destage with filler
  EXPECT_EQ(destage_.destaged(), 100u);
  EXPECT_EQ(destage_.stats().partial_pages, 1u);
  EXPECT_EQ(destage_.stats().filler_bytes, Capacity() - 100u);

  Result<ParsedDestagePage> page = ReadRingSlot(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->header.data_len, 100u);
}

TEST_F(DestageTest, StreamSplitsAcrossPagesInOrder) {
  const size_t total = 3 * Capacity() + 500;
  WriteStream(0, Capacity(), 1);
  WriteStream(Capacity(), Capacity(), 2);
  WriteStream(2 * Capacity(), Capacity(), 3);
  WriteStream(3 * Capacity(), 500, 4);
  sim_.Run();
  EXPECT_EQ(destage_.destaged(), total);
  EXPECT_EQ(destage_.stats().pages_written, 4u);
  // Page sequences carry chained stream offsets.
  uint64_t expected_offset = 0;
  for (uint64_t seq = 0; seq < 4; ++seq) {
    Result<ParsedDestagePage> page = ReadRingSlot(seq);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->header.sequence, seq);
    EXPECT_EQ(page->header.stream_offset, expected_offset);
    expected_offset += page->header.data_len;
  }
  EXPECT_EQ(expected_offset, total);
}

TEST_F(DestageTest, DestagedFloorPropagatedToCmb) {
  WriteStream(0, Capacity(), 5);
  sim_.Run();
  EXPECT_EQ(cmb_.destaged_floor(), Capacity());
}

TEST_F(DestageTest, BarrierWithholdsDestaging) {
  destage_.SetBarrier(50);
  WriteStream(0, Capacity(), 6);
  sim_.Run();
  EXPECT_EQ(destage_.destaged(), 50u);  // only below the barrier
  destage_.SetBarrier(~0ull);
  sim_.Run();
  EXPECT_EQ(destage_.destaged(), Capacity());
}

TEST_F(DestageTest, RingWrapsOverLbaRange) {
  // 16-slot ring; destage 20 pages worth.
  for (int i = 0; i < 20; ++i) {
    WriteStream(static_cast<uint64_t>(i) * Capacity(), Capacity(),
                static_cast<uint8_t>(i));
    sim_.Run();
  }
  EXPECT_EQ(destage_.next_sequence(), 20u);
  // Slot 0 now holds sequence 16 (overwritten on wrap).
  Result<ParsedDestagePage> page = ReadRingSlot(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->header.sequence, 16u);
  // Slot 4 still holds sequence 4 from the first lap.
  page = ReadRingSlot(4);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->header.sequence, 4u);
}

TEST_F(DestageTest, RingWrapTrimsSupersededSlotsBeforeReuse) {
  // First lap: 16 slots, no reuse, no trims.
  for (int i = 0; i < 16; ++i) {
    WriteStream(static_cast<uint64_t>(i) * Capacity(), Capacity(),
                static_cast<uint8_t>(i));
    sim_.Run();
  }
  EXPECT_EQ(destage_.stats().ring_trims, 0u);
  EXPECT_EQ(ftl_.page_map().mapped_pages(), 16u);

  // Second lap: each reused slot is TRIMmed before its rewrite, handing
  // the stale copy back to GC as immediate garbage instead of leaving it
  // valid until the overwrite's map update.
  for (int i = 16; i < 20; ++i) {
    WriteStream(static_cast<uint64_t>(i) * Capacity(), Capacity(),
                static_cast<uint8_t>(i));
    sim_.Run();
  }
  EXPECT_EQ(destage_.stats().ring_trims, 4u);
  // The ring never holds more than ring_lba_count mapped pages, and the
  // wrapped slots read back as their newest lap.
  EXPECT_EQ(ftl_.page_map().mapped_pages(), 16u);
  for (uint64_t slot = 0; slot < 4; ++slot) {
    Result<ParsedDestagePage> page = ReadRingSlot(slot);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->header.sequence, 16u + slot);
  }
}

TEST_F(DestageTest, PowerLossDestagesEverythingPersisted) {
  WriteStream(0, 1000, 0xCC);
  sim_.Run();  // persisted but below a page: destage pending on threshold
  WriteStream(1000, 500, 0xDD);
  // Don't run: the second chunk is still in the staging queue.
  destage_.set_frozen(true);
  cmb_.DrainStagingForPowerLoss();
  bool done = false;
  destage_.DestageAllForPowerLoss(/*page_budget=*/16, [&]() { done = true; });
  sim_.RunWhile([&]() { return done; });
  EXPECT_EQ(destage_.destaged(), 1500u);
}

TEST_F(DestageTest, PowerLossRespectsEnergyBudget) {
  // 10 pages persisted, budget for 2.
  destage_.set_frozen(true);
  for (int i = 0; i < 10; ++i) {
    WriteStream(static_cast<uint64_t>(i) * Capacity(), Capacity(),
                static_cast<uint8_t>(i));
  }
  cmb_.DrainStagingForPowerLoss();
  uint64_t already = destage_.stats().pages_written;
  bool done = false;
  destage_.DestageAllForPowerLoss(/*page_budget=*/2, [&]() { done = true; });
  sim_.RunWhile([&]() { return done; });
  EXPECT_LE(destage_.stats().pages_written - already, 2u + 1);
}

}  // namespace
}  // namespace xssd::core
