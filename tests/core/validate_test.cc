#include "core/validate.h"

#include <gtest/gtest.h>

namespace xssd::core {
namespace {

TEST(Validate, DefaultConfigIsValid) {
  EXPECT_TRUE(ValidateConfig(VillarsConfig{}).ok());
}

TEST(Validate, ZeroGeometryRejected) {
  VillarsConfig config;
  config.geometry.channels = 0;
  EXPECT_FALSE(ValidateConfig(config).ok());
}

TEST(Validate, PageSmallerThanHeaderRejected) {
  VillarsConfig config;
  config.geometry.page_bytes = 16;
  EXPECT_FALSE(ValidateConfig(config).ok());
}

TEST(Validate, QueueLargerThanRingRejected) {
  VillarsConfig config;
  config.cmb.ring_bytes = 4096;
  config.cmb.queue_bytes = 8192;
  EXPECT_FALSE(ValidateConfig(config).ok());
}

TEST(Validate, ZeroQueueRejected) {
  VillarsConfig config;
  config.cmb.queue_bytes = 0;
  EXPECT_FALSE(ValidateConfig(config).ok());
}

TEST(Validate, DestageRingBeyondAddressSpaceRejected) {
  VillarsConfig config;
  config.destage.ring_start_lba = 1ull << 40;
  EXPECT_TRUE(ValidateConfig(config).IsOutOfRange());
}

TEST(Validate, RingSmallerThanOnePagePayloadRejected) {
  VillarsConfig config;
  config.cmb.ring_bytes = 8 * 1024;  // < 16 KiB page payload
  config.cmb.queue_bytes = 4 * 1024;
  EXPECT_FALSE(ValidateConfig(config).ok());
}

TEST(Validate, BadOverprovisionRejected) {
  VillarsConfig config;
  config.ftl.overprovision = 0.95;
  EXPECT_FALSE(ValidateConfig(config).ok());
}

TEST(Validate, BadDramFractionRejected) {
  VillarsConfig config;
  config.cmb.dram_available_fraction = 0;
  EXPECT_FALSE(ValidateConfig(config).ok());
  config.cmb.dram_available_fraction = 1.5;
  EXPECT_FALSE(ValidateConfig(config).ok());
}

TEST(Validate, ZeroSupercapBudgetRejected) {
  VillarsConfig config;
  config.power.supercap_page_budget = 0;
  EXPECT_FALSE(ValidateConfig(config).ok());
}

TEST(ValidatePartitioned, EmptyPartitionsRejected) {
  PartitionedConfig config;
  EXPECT_FALSE(ValidateConfig(config).ok());
}

TEST(ValidatePartitioned, DisjointTenantsAccepted) {
  PartitionedConfig config;
  PartitionConfig a, b;
  a.destage.ring_start_lba = 0;
  a.destage.ring_lba_count = 100;
  b.destage.ring_start_lba = 100;
  b.destage.ring_lba_count = 100;
  config.partitions = {a, b};
  EXPECT_TRUE(ValidateConfig(config).ok());
}

TEST(ValidatePartitioned, OverlappingDestageRingsRejected) {
  PartitionedConfig config;
  PartitionConfig a, b;
  a.destage.ring_start_lba = 0;
  a.destage.ring_lba_count = 100;
  b.destage.ring_start_lba = 50;  // overlaps a
  b.destage.ring_lba_count = 100;
  config.partitions = {a, b};
  EXPECT_FALSE(ValidateConfig(config).ok());
}

TEST(ValidatePartitioned, PerPartitionChecksApply) {
  PartitionedConfig config;
  PartitionConfig a;
  a.cmb.queue_bytes = 0;
  config.partitions = {a};
  EXPECT_FALSE(ValidateConfig(config).ok());
}

}  // namespace
}  // namespace xssd::core
