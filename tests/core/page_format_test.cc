#include "core/page_format.h"

#include <gtest/gtest.h>

#include <cstring>

namespace xssd::core {
namespace {

TEST(PageFormat, BuildParseRoundTrip) {
  std::vector<uint8_t> data(1000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  DestagePageHeader header;
  header.sequence = 42;
  header.stream_offset = 123456;
  header.data_len = static_cast<uint32_t>(data.size());
  header.epoch = 3;

  std::vector<uint8_t> page =
      BuildDestagePage(header, data.data(), data.size(), 16384);
  EXPECT_EQ(page.size(), 16384u);

  Result<ParsedDestagePage> parsed = ParseDestagePage(page);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->header.sequence, 42u);
  EXPECT_EQ(parsed->header.stream_offset, 123456u);
  EXPECT_EQ(parsed->header.epoch, 3u);
  EXPECT_EQ(parsed->data, data);
}

TEST(PageFormat, FillerIsZero) {
  std::vector<uint8_t> data(10, 0xFF);
  DestagePageHeader header;
  header.data_len = 10;
  std::vector<uint8_t> page =
      BuildDestagePage(header, data.data(), data.size(), 4096);
  for (size_t i = DestagePageHeader::kSize + 10; i < page.size(); ++i) {
    EXPECT_EQ(page[i], 0) << "at " << i;
  }
}

TEST(PageFormat, UnwrittenPageIsNotFound) {
  std::vector<uint8_t> erased(4096, 0xFF);
  EXPECT_TRUE(ParseDestagePage(erased).status().IsNotFound());
  std::vector<uint8_t> zeros(4096, 0x00);
  EXPECT_TRUE(ParseDestagePage(zeros).status().IsNotFound());
}

TEST(PageFormat, CorruptionDetectedInData) {
  std::vector<uint8_t> data(100, 0xAB);
  DestagePageHeader header;
  header.data_len = 100;
  auto page = BuildDestagePage(header, data.data(), data.size(), 4096);
  page[DestagePageHeader::kSize + 50] ^= 0x01;
  EXPECT_TRUE(ParseDestagePage(page).status().IsCorruption());
}

TEST(PageFormat, CorruptionDetectedInHeader) {
  std::vector<uint8_t> data(100, 0xAB);
  DestagePageHeader header;
  header.data_len = 100;
  header.sequence = 7;
  auto page = BuildDestagePage(header, data.data(), data.size(), 4096);
  page[8] ^= 0x01;  // sequence field
  EXPECT_TRUE(ParseDestagePage(page).status().IsCorruption());
}

TEST(PageFormat, TruncatedPageRejected) {
  std::vector<uint8_t> tiny(8, 0);
  EXPECT_FALSE(ParseDestagePage(tiny).ok());
}

TEST(PageFormat, InsaneLengthRejected) {
  std::vector<uint8_t> data(10, 1);
  DestagePageHeader header;
  header.data_len = 10;
  auto page = BuildDestagePage(header, data.data(), data.size(), 4096);
  // Corrupt the length to exceed the page; CRC check would also catch it,
  // but the bounds check must fire first (no OOB read).
  uint32_t huge = 1 << 30;
  std::memcpy(page.data() + 24, &huge, 4);
  EXPECT_TRUE(ParseDestagePage(page).status().IsCorruption());
}

TEST(PageFormat, CapacityAccountsForHeader) {
  EXPECT_EQ(DestagePayloadCapacity(16384), 16384u - 32);
}

}  // namespace
}  // namespace xssd::core
