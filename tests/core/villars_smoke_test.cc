// End-to-end smoke tests: a host appends through the fast side with the
// drop-in calls, data persists, destages, and reads back from the
// conventional side.

#include <gtest/gtest.h>

#include "host/node.h"
#include "host/sync.h"
#include "host/xcalls.h"
#include "sim/random.h"

namespace xssd {
namespace {

core::VillarsConfig SmallConfig() {
  core::VillarsConfig config;
  config.geometry.channels = 4;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 256;
  return config;
}

std::vector<uint8_t> Pattern(size_t len, uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<uint8_t> data(len);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  return data;
}

TEST(VillarsSmoke, AppendSyncPersists) {
  sim::Simulator sim;
  host::StorageNode node(&sim, SmallConfig(), pcie::FabricConfig{}, "n0");
  ASSERT_TRUE(node.Init().ok());

  std::vector<uint8_t> data = Pattern(10000, 1);
  ASSERT_EQ(host::x_pwrite(sim, node.client(), data.data(), data.size()),
            static_cast<ssize_t>(data.size()));
  ASSERT_EQ(host::x_fsync(sim, node.client()), 0);

  EXPECT_GE(node.device().cmb().local_credit(), data.size());
  EXPECT_EQ(node.client().written(), data.size());
}

TEST(VillarsSmoke, ReadTailReturnsAppendedBytes) {
  sim::Simulator sim;
  host::StorageNode node(&sim, SmallConfig(), pcie::FabricConfig{}, "n0");
  ASSERT_TRUE(node.Init().ok());

  std::vector<uint8_t> data = Pattern(60000, 2);
  ASSERT_EQ(host::x_pwrite(sim, node.client(), data.data(), data.size()),
            static_cast<ssize_t>(data.size()));
  ASSERT_EQ(host::x_fsync(sim, node.client()), 0);

  std::vector<uint8_t> got(data.size());
  ASSERT_EQ(host::x_pread(sim, node.client(), node.driver(), got.data(),
                          got.size()),
            static_cast<ssize_t>(got.size()));
  EXPECT_EQ(got, data);
}

TEST(VillarsSmoke, ConventionalSideBlockIo) {
  sim::Simulator sim;
  host::StorageNode node(&sim, SmallConfig(), pcie::FabricConfig{}, "n0");
  ASSERT_TRUE(node.Init().ok());

  uint32_t block = node.driver().block_bytes();
  std::vector<uint8_t> data = Pattern(block * 3, 3);

  host::SyncRunner runner(&sim);
  // Write three blocks at LBA 1000 (clear of the destage ring), flush,
  // read back.
  Status status = runner.Await([&](std::function<void(Status)> done) {
    node.driver().Write(1000, data.data(), 3, std::move(done));
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  status = runner.Await([&](std::function<void(Status)> done) {
    node.driver().Flush(std::move(done));
  });
  ASSERT_TRUE(status.ok()) << status.ToString();

  Result<std::vector<uint8_t>> got =
      runner.AwaitValue<std::vector<uint8_t>>(
          [&](std::function<void(Status, std::vector<uint8_t>)> done) {
            node.driver().Read(1000, 3, std::move(done));
          });
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, data);
}

}  // namespace
}  // namespace xssd
