#include "core/cmb_module.h"

#include <gtest/gtest.h>

#include <cstring>

#include "sim/random.h"

namespace xssd::core {
namespace {

CmbConfig SmallConfig() {
  CmbConfig config;
  config.ring_bytes = 4096;
  config.queue_bytes = 1024;
  return config;
}

std::vector<uint8_t> Bytes(size_t len, uint8_t fill) {
  return std::vector<uint8_t>(len, fill);
}

class CmbTest : public ::testing::Test {
 protected:
  CmbTest() : cmb_(&sim_, SmallConfig()) {}

  void Write(uint64_t ring_offset, const std::vector<uint8_t>& data) {
    cmb_.OnRingWrite(ring_offset, data.data(), data.size());
  }

  sim::Simulator sim_;
  CmbModule cmb_;
};

TEST_F(CmbTest, CreditAdvancesOnlyAfterPersist) {
  Write(0, Bytes(100, 1));
  EXPECT_EQ(cmb_.local_credit(), 0u);  // still in the staging queue
  EXPECT_EQ(cmb_.staging_occupancy(), 100u);
  sim_.Run();
  EXPECT_EQ(cmb_.local_credit(), 100u);
  EXPECT_EQ(cmb_.staging_occupancy(), 0u);
}

TEST_F(CmbTest, CreditHookFiresOnAdvance) {
  std::vector<uint64_t> credits;
  cmb_.SetCreditHook([&](uint64_t credit) { credits.push_back(credit); });
  Write(0, Bytes(50, 1));
  Write(50, Bytes(50, 2));
  sim_.Run();
  ASSERT_EQ(credits.size(), 2u);
  EXPECT_EQ(credits[0], 50u);
  EXPECT_EQ(credits[1], 100u);
}

TEST_F(CmbTest, ArrivalHookSeesStreamOffsets) {
  std::vector<uint64_t> offsets;
  cmb_.SetArrivalHook([&](uint64_t offset, const uint8_t*, size_t) {
    offsets.push_back(offset);
  });
  Write(0, Bytes(64, 1));
  Write(64, Bytes(64, 2));
  sim_.Run();
  EXPECT_EQ(offsets, (std::vector<uint64_t>{0, 64}));
}

TEST_F(CmbTest, OutOfOrderArrivalStallsCreditAtGap) {
  // Chunk B lands before chunk A: the counter must not advance over the
  // hole (paper §4.1: "only ... when contiguous chunks of data are
  // formed").
  Write(100, Bytes(100, 2));  // B: [100, 200)
  sim_.Run();
  EXPECT_EQ(cmb_.local_credit(), 0u);
  EXPECT_TRUE(cmb_.HasPendingBeyondCredit());
  Write(0, Bytes(100, 1));  // A: [0, 100) fills the gap
  sim_.Run();
  EXPECT_EQ(cmb_.local_credit(), 200u);
  EXPECT_FALSE(cmb_.HasPendingBeyondCredit());
}

TEST_F(CmbTest, RingDataIsActuallyStored) {
  std::vector<uint8_t> data(128);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  Write(0, data);
  sim_.Run();
  std::vector<uint8_t> out(128);
  cmb_.ReadRing(0, out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST_F(CmbTest, CopyOutReassemblesAcrossRingWrap) {
  // Fill the ring once, destage it, then wrap.
  cmb_.set_destaged_floor(0);
  Write(0, Bytes(4096, 1));
  sim_.Run();
  cmb_.set_destaged_floor(4096);  // everything destaged; ring reusable
  // Stream offsets [4096, 4296) map to ring [0, 200).
  std::vector<uint8_t> data(200);
  for (size_t i = 0; i < 200; ++i) data[i] = static_cast<uint8_t>(i + 3);
  Write(0, data);
  sim_.Run();
  EXPECT_EQ(cmb_.local_credit(), 4296u);
  std::vector<uint8_t> out(200);
  cmb_.CopyOut(4096, out.data(), 200);
  EXPECT_EQ(out, data);
}

TEST_F(CmbTest, WrapAroundChunkStoredContiguously) {
  cmb_.set_destaged_floor(0);
  Write(0, Bytes(4000, 1));
  sim_.Run();
  cmb_.set_destaged_floor(4000);
  // A write crossing the ring boundary: stream [4000, 4200) maps to ring
  // [4000,4096) + [0,104). The host store path splits it in two (a TLP
  // never crosses the BAR end).
  std::vector<uint8_t> data(200);
  for (size_t i = 0; i < 200; ++i) data[i] = static_cast<uint8_t>(i ^ 0x55);
  Write(4000, std::vector<uint8_t>(data.begin(), data.begin() + 96));
  Write(0, std::vector<uint8_t>(data.begin() + 96, data.end()));
  sim_.Run();
  std::vector<uint8_t> out(200);
  cmb_.CopyOut(4000, out.data(), 200);
  EXPECT_EQ(out, data);
}

TEST_F(CmbTest, OverwriteViolationCounted) {
  EXPECT_EQ(cmb_.overwrite_violations(), 0u);
  // Write a full ring without any destaging, then one more byte region:
  // the second lap overwrites un-destaged data.
  Write(0, Bytes(4096, 1));
  sim_.Run();
  Write(0, Bytes(64, 2));  // stream offset 4096, floor still 0
  sim_.Run();
  EXPECT_EQ(cmb_.overwrite_violations(), 1u);
}

TEST_F(CmbTest, DrainStagingForPowerLossPersistsQueuedChunks) {
  Write(0, Bytes(300, 7));
  EXPECT_EQ(cmb_.local_credit(), 0u);
  cmb_.DrainStagingForPowerLoss();  // no simulator time passes
  EXPECT_EQ(cmb_.local_credit(), 300u);
  EXPECT_EQ(cmb_.staging_occupancy(), 0u);
  sim_.Run();  // stale persist events must be no-ops
  EXPECT_EQ(cmb_.local_credit(), 300u);
}

TEST_F(CmbTest, ResetForRebootClearsEverything) {
  Write(0, Bytes(200, 1));
  sim_.Run();
  cmb_.ResetForReboot();
  EXPECT_EQ(cmb_.local_credit(), 0u);
  EXPECT_EQ(cmb_.highest_received(), 0u);
  std::vector<uint8_t> out(16);
  cmb_.ReadRing(0, out.data(), 16);
  EXPECT_EQ(out, Bytes(16, 0));
}

TEST_F(CmbTest, BackingRateDependsOnKind) {
  CmbConfig dram = SmallConfig();
  dram.backing = BackingKind::kDram;
  CmbModule dram_cmb(&sim_, dram);
  EXPECT_LT(dram_cmb.backing_bytes_per_sec(), cmb_.backing_bytes_per_sec());
}

TEST_F(CmbTest, PersistLatencyScalesWithBackingRate) {
  // 1024 bytes at SRAM speed persists strictly faster than at the shared
  // DRAM rate.
  sim::Simulator sim2;
  CmbConfig dram = SmallConfig();
  dram.backing = BackingKind::kDram;
  CmbModule dram_cmb(&sim2, dram);

  uint64_t sram_done = 0, dram_done = 0;
  cmb_.SetCreditHook([&](uint64_t) { sram_done = sim_.Now(); });
  dram_cmb.SetCreditHook([&](uint64_t) { dram_done = sim2.Now(); });
  std::vector<uint8_t> chunk(1024, 9);
  cmb_.OnRingWrite(0, chunk.data(), chunk.size());
  dram_cmb.OnRingWrite(0, chunk.data(), chunk.size());
  sim_.Run();
  sim2.Run();
  EXPECT_LT(sram_done, dram_done);
}

// Property: random mostly-sequential arrival (within the staging window)
// always converges to full credit with intact bytes.
class CmbShuffleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CmbShuffleTest, WindowedShuffledArrivalsConverge) {
  sim::Simulator sim;
  CmbConfig config;
  config.ring_bytes = 64 * 1024;
  config.queue_bytes = 4096;
  CmbModule cmb(&sim, config);

  sim::Rng rng(GetParam());
  const uint64_t total = 16 * 1024;
  std::vector<uint8_t> stream(total);
  for (auto& b : stream) b = static_cast<uint8_t>(rng.Next());

  // Emit in chunks, shuffled within a sliding 2 KiB window (legal
  // out-of-order arrival per §4.1).
  uint64_t base = 0;
  while (base < total) {
    uint64_t window_end = std::min(base + 2048, total);
    std::vector<std::pair<uint64_t, uint64_t>> chunks;
    uint64_t at = base;
    while (at < window_end) {
      uint64_t len = std::min<uint64_t>(1 + rng.Uniform(256), window_end - at);
      chunks.push_back({at, len});
      at += len;
    }
    for (size_t i = chunks.size(); i > 1; --i) {
      std::swap(chunks[i - 1], chunks[rng.Uniform(i)]);
    }
    for (auto [offset, len] : chunks) {
      cmb.OnRingWrite(offset % config.ring_bytes, stream.data() + offset,
                      len);
    }
    sim.Run();
    base = window_end;
  }
  EXPECT_EQ(cmb.local_credit(), total);
  std::vector<uint8_t> out(total);
  cmb.CopyOut(0, out.data(), total);
  EXPECT_EQ(out, stream);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CmbShuffleTest,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace xssd::core
