#include "core/villars_device.h"

#include <gtest/gtest.h>

#include <cstring>

#include "host/node.h"
#include "host/xcalls.h"

namespace xssd::core {
namespace {

VillarsConfig SmallConfig() {
  VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 64;
  return config;
}

class VillarsDeviceTest : public ::testing::Test {
 protected:
  VillarsDeviceTest()
      : node_(&sim_, SmallConfig(), pcie::FabricConfig{}, "dut") {
    EXPECT_TRUE(node_.Init().ok());
  }

  uint64_t ReadRegister(uint64_t reg) {
    uint8_t raw[8] = {0};
    EXPECT_TRUE(node_.fabric()
                    .FunctionalRead(host::NodeLayout::kCmbBase + reg, raw, 8)
                    .ok());
    uint64_t value = 0;
    std::memcpy(&value, raw, 8);
    return value;
  }

  nvme::Completion Admin(nvme::Command cmd) {
    nvme::Completion result;
    bool got = false;
    node_.driver().Admin(cmd, [&](nvme::Completion cpl) {
      result = cpl;
      got = true;
    });
    sim_.RunWhile([&]() { return got; });
    return result;
  }

  sim::Simulator sim_;
  host::StorageNode node_;
};

TEST_F(VillarsDeviceTest, GeometryRegistersMatchConfig) {
  EXPECT_EQ(ReadRegister(kRegQueueBytes), 32u * 1024);
  EXPECT_EQ(ReadRegister(kRegRingBytes), 128u * 1024);
  EXPECT_EQ(ReadRegister(kRegDestageStartLba), 0u);
  EXPECT_EQ(ReadRegister(kRegDestageLbaCount), 64u);
  EXPECT_EQ(ReadRegister(kRegEpoch), 0u);
}

TEST_F(VillarsDeviceTest, CreditRegistersTrackWrites) {
  std::vector<uint8_t> data(1000, 0x42);
  host::x_pwrite(sim_, node_.client(), data.data(), data.size());
  host::x_fsync(sim_, node_.client());
  EXPECT_EQ(ReadRegister(kRegCredit), 1000u);
  EXPECT_EQ(ReadRegister(kRegLocalCredit), 1000u);
  sim_.RunFor(sim::Ms(2));
  EXPECT_EQ(ReadRegister(kRegDestaged), 1000u);
}

TEST_F(VillarsDeviceTest, VendorSetRoleRoundTrips) {
  nvme::Command cmd;
  cmd.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdSetRole);
  cmd.cdw10 = static_cast<uint32_t>(Role::kPrimary);
  EXPECT_TRUE(Admin(cmd).ok());
  EXPECT_EQ(node_.device().transport().role(), Role::kPrimary);
  uint64_t status_word = ReadRegister(kRegTransportStatus);
  EXPECT_EQ(status_word & StatusBits::kRoleMask,
            static_cast<uint64_t>(Role::kPrimary));

  cmd.cdw10 = 99;  // invalid role
  EXPECT_FALSE(Admin(cmd).ok());
}

TEST_F(VillarsDeviceTest, VendorSetDestagePolicy) {
  nvme::Command cmd;
  cmd.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdSetDestagePolicy);
  cmd.cdw10 = static_cast<uint32_t>(ftl::SchedulingPolicy::kDestagePriority);
  EXPECT_TRUE(Admin(cmd).ok());
  EXPECT_EQ(node_.device().ftl().scheduler().policy(),
            ftl::SchedulingPolicy::kDestagePriority);
  cmd.cdw10 = 7;
  EXPECT_FALSE(Admin(cmd).ok());
}

TEST_F(VillarsDeviceTest, VendorSetReplicationProtocol) {
  nvme::Command cmd;
  cmd.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdSetReplication);
  cmd.cdw10 = static_cast<uint32_t>(ReplicationProtocol::kChain);
  EXPECT_TRUE(Admin(cmd).ok());
  EXPECT_EQ(node_.device().transport().protocol(),
            ReplicationProtocol::kChain);
}

TEST_F(VillarsDeviceTest, VendorSetUpdatePeriod) {
  nvme::Command cmd;
  cmd.opcode = static_cast<uint8_t>(nvme::AdminOpcode::kXssdSetUpdatePeriod);
  cmd.cdw10 = 400;
  EXPECT_TRUE(Admin(cmd).ok());
  EXPECT_EQ(node_.device().transport().update_period(), sim::Ns(400));
}

TEST_F(VillarsDeviceTest, DestageBarrierRegisterWritable) {
  uint64_t barrier = 12345;
  uint8_t raw[8];
  std::memcpy(raw, &barrier, 8);
  ASSERT_TRUE(node_.fabric()
                  .FunctionalWrite(
                      host::NodeLayout::kCmbBase + kRegDestageBarrier, raw, 8)
                  .ok());
  EXPECT_EQ(node_.device().destage().barrier(), 12345u);
  EXPECT_EQ(ReadRegister(kRegDestageBarrier), 12345u);
}

TEST_F(VillarsDeviceTest, PowerFailThenRebootBumpsEpochAndHalts) {
  std::vector<uint8_t> data(500, 0x77);
  host::x_pwrite(sim_, node_.client(), data.data(), data.size());
  host::x_fsync(sim_, node_.client());

  bool destaged = false;
  node_.device().PowerFail([&]() { destaged = true; });
  sim_.RunWhile([&]() { return destaged; });
  EXPECT_TRUE(node_.device().halted());
  EXPECT_NE(ReadRegister(kRegTransportStatus) & StatusBits::kHalted, 0u);

  // A halted device ignores traffic.
  uint8_t byte = 1;
  node_.fabric().FunctionalWrite(
      host::NodeLayout::kCmbBase + kRingWindowOffset, &byte, 1);
  EXPECT_EQ(node_.device().cmb().staging_occupancy(), 0u);

  node_.device().Reboot();
  EXPECT_FALSE(node_.device().halted());
  EXPECT_EQ(node_.device().epoch(), 1u);
  EXPECT_EQ(ReadRegister(kRegEpoch), 1u);
  EXPECT_EQ(ReadRegister(kRegLocalCredit), 0u);  // fresh fast side
}

TEST_F(VillarsDeviceTest, RingWindowIsReadable) {
  std::vector<uint8_t> data = {9, 8, 7, 6};
  host::x_pwrite(sim_, node_.client(), data.data(), data.size());
  host::x_fsync(sim_, node_.client());
  uint8_t out[4] = {0};
  ASSERT_TRUE(
      node_.fabric()
          .FunctionalRead(host::NodeLayout::kCmbBase + kRingWindowOffset,
                          out, 4)
          .ok());
  EXPECT_EQ(out[0], 9);
  EXPECT_EQ(out[3], 6);
}

TEST_F(VillarsDeviceTest, ShadowMailboxWritesReachTransport) {
  uint64_t value = 424242;
  uint8_t raw[8];
  std::memcpy(raw, &value, 8);
  ASSERT_TRUE(node_.fabric()
                  .FunctionalWrite(
                      host::NodeLayout::kCmbBase + kRegShadowBase + 8, raw, 8)
                  .ok());
  EXPECT_EQ(node_.device().transport().shadow_counter(1), 424242u);
  EXPECT_EQ(ReadRegister(kRegShadowBase + 8), 424242u);
}

}  // namespace
}  // namespace xssd::core
