#include "core/transport_module.h"

#include <gtest/gtest.h>

#include <cstring>

namespace xssd::core {
namespace {

/// Captures peer-write traffic landing on a fabric region.
class SinkDevice : public pcie::MmioDevice {
 public:
  void OnMmioWrite(uint64_t offset, const uint8_t* data,
                   size_t len) override {
    writes.push_back({offset, std::vector<uint8_t>(data, data + len)});
  }
  void OnMmioRead(uint64_t, uint8_t* out, size_t len) override {
    std::memset(out, 0, len);
  }
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> writes;
};

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : fabric_(&sim_, pcie::FabricConfig{}, "fabric"),
        transport_(&sim_, &fabric_, TransportConfig{}) {
    transport_.set_ring_bytes(4096);
    EXPECT_TRUE(fabric_.AddMmioRegion(0x10000, 0x10000, &sink_, "sink").ok());
  }

  sim::Simulator sim_;
  pcie::PcieFabric fabric_;
  SinkDevice sink_;
  TransportModule transport_;
};

TEST_F(TransportTest, StandaloneDoesNotMirror) {
  uint8_t data[16] = {0};
  transport_.OnCmbArrival(0, data, 16);
  sim_.Run();
  EXPECT_TRUE(sink_.writes.empty());
}

TEST_F(TransportTest, PrimaryMirrorsToPeerRingWindow) {
  ASSERT_TRUE(transport_.AddPeer(0x10000).ok());
  transport_.SetRole(Role::kPrimary);
  uint8_t data[16];
  for (int i = 0; i < 16; ++i) data[i] = static_cast<uint8_t>(i);
  transport_.OnCmbArrival(100, data, 16);
  sim_.Run();
  ASSERT_EQ(sink_.writes.size(), 1u);
  EXPECT_EQ(sink_.writes[0].first, kRingWindowOffset + 100);
  EXPECT_EQ(sink_.writes[0].second[3], 3);
}

TEST_F(TransportTest, MirrorWrapsRingOffsets) {
  ASSERT_TRUE(transport_.AddPeer(0x10000).ok());
  transport_.SetRole(Role::kPrimary);
  std::vector<uint8_t> data(200, 0x7E);
  // Stream offset 4000 in a 4096-byte ring: wraps after 96 bytes.
  transport_.OnCmbArrival(4000, data.data(), data.size());
  sim_.Run();
  ASSERT_EQ(sink_.writes.size(), 2u);
  EXPECT_EQ(sink_.writes[0].first, kRingWindowOffset + 4000);
  EXPECT_EQ(sink_.writes[0].second.size(), 96u);
  EXPECT_EQ(sink_.writes[1].first, kRingWindowOffset + 0);
  EXPECT_EQ(sink_.writes[1].second.size(), 104u);
}

TEST_F(TransportTest, OneMirrorFlowPerPeer) {
  ASSERT_TRUE(transport_.AddPeer(0x10000).ok());
  ASSERT_TRUE(transport_.AddPeer(0x14000).ok());
  transport_.SetRole(Role::kPrimary);
  uint8_t data[8] = {1};
  transport_.OnCmbArrival(0, data, 8);
  sim_.Run();
  EXPECT_EQ(sink_.writes.size(), 2u);  // both land in the same sink region
  EXPECT_EQ(transport_.mirrored_bytes(), 16u);
}

TEST_F(TransportTest, PeerLimitEnforced) {
  for (uint32_t i = 0; i < kMaxPeers; ++i) {
    EXPECT_TRUE(transport_.AddPeer(0x10000 + i * 8).ok());
  }
  EXPECT_TRUE(transport_.AddPeer(0x19000).IsResourceExhausted());
  transport_.ClearPeers();
  EXPECT_EQ(transport_.peer_count(), 0u);
}

TEST_F(TransportTest, SecondarySendsCreditUpdatesEveryPeriod) {
  transport_.ConfigureSecondary(0x10008);
  transport_.SetRole(Role::kSecondary);
  transport_.OnLocalCredit(500);
  sim_.RunFor(sim::Us(10));
  // ~10us / 0.8us period => ~12 updates.
  EXPECT_GE(transport_.counter_updates_sent(), 10u);
  ASSERT_FALSE(sink_.writes.empty());
  uint64_t value = 0;
  std::memcpy(&value, sink_.writes.back().second.data(), 8);
  EXPECT_EQ(value, 500u);
  EXPECT_EQ(sink_.writes.back().first, 8u);  // region offset of mailbox
}

TEST_F(TransportTest, RoleChangeCancelsSecondaryTimer) {
  transport_.ConfigureSecondary(0x10008);
  transport_.SetRole(Role::kSecondary);
  sim_.RunFor(sim::Us(5));
  uint64_t sent = transport_.counter_updates_sent();
  transport_.SetRole(Role::kStandalone);
  sim_.RunFor(sim::Us(20));
  EXPECT_EQ(transport_.counter_updates_sent(), sent);
}

TEST_F(TransportTest, ShadowCountersAreMonotone) {
  transport_.OnShadowWrite(0, 100);
  transport_.OnShadowWrite(0, 50);  // stale update ignored
  EXPECT_EQ(transport_.shadow_counter(0), 100u);
  transport_.OnShadowWrite(0, 200);
  EXPECT_EQ(transport_.shadow_counter(0), 200u);
  transport_.OnShadowWrite(kMaxPeers + 1, 999);  // out of range ignored
}

TEST_F(TransportTest, EffectiveCreditPerProtocol) {
  ASSERT_TRUE(transport_.AddPeer(0x10000).ok());
  ASSERT_TRUE(transport_.AddPeer(0x14000).ok());
  transport_.SetRole(Role::kPrimary);
  transport_.OnShadowWrite(0, 80);
  transport_.OnShadowWrite(1, 30);

  transport_.set_protocol(ReplicationProtocol::kEager);
  EXPECT_EQ(transport_.EffectiveCredit(100), 30u);  // slowest secondary
  transport_.set_protocol(ReplicationProtocol::kLazy);
  EXPECT_EQ(transport_.EffectiveCredit(100), 100u);  // local only
  transport_.set_protocol(ReplicationProtocol::kChain);
  EXPECT_EQ(transport_.EffectiveCredit(100), 30u);  // tail = peer 1
  transport_.OnShadowWrite(1, 95);
  EXPECT_EQ(transport_.EffectiveCredit(100), 95u);
  // Effective credit never exceeds local.
  transport_.OnShadowWrite(1, 500);
  EXPECT_EQ(transport_.EffectiveCredit(100), 100u);
}

TEST_F(TransportTest, StandaloneEffectiveCreditIsLocal) {
  EXPECT_EQ(transport_.EffectiveCredit(77), 77u);
}

TEST_F(TransportTest, StatusWordEncodesRoleAndPeers) {
  ASSERT_TRUE(transport_.AddPeer(0x10000).ok());
  transport_.SetRole(Role::kPrimary);
  uint64_t word = transport_.StatusWord(0);
  EXPECT_EQ(word & StatusBits::kRoleMask,
            static_cast<uint64_t>(Role::kPrimary));
  EXPECT_EQ((word & StatusBits::kPeerCountMask) >> StatusBits::kPeerCountShift,
            1u);
  EXPECT_EQ(word & StatusBits::kReplicationStalled, 0u);
}

TEST_F(TransportTest, StalledBitRaisedWhenSecondaryLagsTooLong) {
  TransportConfig config;
  config.stall_timeout = sim::Us(100);
  TransportModule transport(&sim_, &fabric_, config);
  transport.set_ring_bytes(4096);
  ASSERT_TRUE(transport.AddPeer(0x10000).ok());
  transport.SetRole(Role::kPrimary);
  transport.OnShadowWrite(0, 10);
  sim_.RunFor(sim::Us(50));
  EXPECT_EQ(transport.StatusWord(100) & StatusBits::kReplicationStalled, 0u);
  sim_.RunFor(sim::Us(100));  // now past the stall timeout with lag
  EXPECT_NE(transport.StatusWord(100) & StatusBits::kReplicationStalled, 0u);
  // Progress clears it.
  transport.OnShadowWrite(0, 100);
  EXPECT_EQ(transport.StatusWord(100) & StatusBits::kReplicationStalled, 0u);
}

}  // namespace
}  // namespace xssd::core
