#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/random.h"
#include "sim/stats.h"

namespace xssd::sim {
namespace {

TEST(LatencyRecorderBounded, ExactStatsSurviveTheSpill) {
  LatencyRecorder exact;
  LatencyRecorder bounded;
  bounded.EnableBounded(64);

  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    // Heavy-tailed latencies spanning several octaves, like real destage
    // stalls behind fast CMB hits.
    double sample = 1.0 + static_cast<double>(rng.Uniform(1 << 20));
    exact.Add(sample);
    bounded.Add(sample);
  }

  EXPECT_TRUE(bounded.bounded_overflow());
  EXPECT_EQ(bounded.count(), exact.count());
  EXPECT_EQ(bounded.Min(), exact.Min());
  EXPECT_EQ(bounded.Max(), exact.Max());
  EXPECT_DOUBLE_EQ(bounded.Mean(), exact.Mean());
}

TEST(LatencyRecorderBounded, PercentilesStayWithinTheDocumentedBound) {
  LatencyRecorder exact;
  LatencyRecorder bounded;
  bounded.EnableBounded(32);

  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    double sample = 1.0 + static_cast<double>(rng.Uniform(1 << 22));
    exact.Add(sample);
    bounded.Add(sample);
  }

  // Log2Histogram documents ≤ ~3.2% relative error per sample; percentile
  // interpolation across a dense sample set stays within ~2× that.
  for (double p : {1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    double want = exact.Percentile(p);
    double got = bounded.Percentile(p);
    EXPECT_NEAR(got, want, want * 0.065) << "p" << p;
  }
  // And always clamped into the exact range.
  EXPECT_GE(bounded.Percentile(0), bounded.Min());
  EXPECT_LE(bounded.Percentile(100), bounded.Max());
}

TEST(LatencyRecorderBounded, BelowTheCapStaysExact) {
  LatencyRecorder bounded;
  bounded.EnableBounded(100);
  for (int i = 1; i <= 99; ++i) bounded.Add(static_cast<double>(i));
  EXPECT_FALSE(bounded.bounded_overflow());
  // Exact interpolated nearest-rank, identical to the unbounded recorder.
  EXPECT_DOUBLE_EQ(bounded.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(bounded.Percentile(25), 25.5);
}

TEST(LatencyRecorderBounded, EnablingAfterTheFactSpillsImmediately) {
  LatencyRecorder recorder;
  for (int i = 0; i < 1000; ++i) recorder.Add(static_cast<double>(i + 1));
  recorder.EnableBounded(64);  // already past the cap: spill now
  EXPECT_TRUE(recorder.bounded_overflow());
  EXPECT_EQ(recorder.count(), 1000u);
  EXPECT_EQ(recorder.Min(), 1.0);
  EXPECT_EQ(recorder.Max(), 1000.0);
  EXPECT_NEAR(recorder.Percentile(50), 500.0, 500.0 * 0.065);
}

TEST(LatencyRecorderBounded, ClearResetsTheOverflowState) {
  LatencyRecorder recorder;
  recorder.EnableBounded(4);
  for (int i = 0; i < 10; ++i) recorder.Add(100.0);
  EXPECT_TRUE(recorder.bounded_overflow());
  recorder.Clear();
  EXPECT_FALSE(recorder.bounded_overflow());
  EXPECT_EQ(recorder.count(), 0u);
  // Still bounded: refilling past the cap spills again.
  for (int i = 0; i < 10; ++i) recorder.Add(7.0);
  EXPECT_TRUE(recorder.bounded_overflow());
  EXPECT_EQ(recorder.count(), 10u);
  EXPECT_EQ(recorder.Min(), 7.0);
  EXPECT_EQ(recorder.Max(), 7.0);
}

TEST(LatencyRecorderBounded, SmallIntegerSamplesAreExactInTheHistogram) {
  // Log2Histogram stores values below 32 exactly, so a spilled recorder
  // over a tiny discrete domain loses nothing.
  LatencyRecorder recorder;
  recorder.EnableBounded(2);
  std::vector<double> samples = {3, 3, 3, 5, 5, 9, 9, 9, 9, 31};
  for (double s : samples) recorder.Add(s);
  EXPECT_TRUE(recorder.bounded_overflow());
  EXPECT_EQ(recorder.Percentile(0), 3.0);
  EXPECT_EQ(recorder.Percentile(100), 31.0);
  EXPECT_NEAR(recorder.Percentile(50), 7.0, 2.01);
}

}  // namespace
}  // namespace xssd::sim
