#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.h"
#include "sim/stats.h"

namespace xssd::sim {
namespace {

TEST(LatencyRecorder, EmptyYieldsZeros) {
  LatencyRecorder recorder;
  EXPECT_TRUE(recorder.empty());
  EXPECT_EQ(recorder.Min(), 0);
  EXPECT_EQ(recorder.Mean(), 0);
  EXPECT_EQ(recorder.Percentile(50), 0);
}

TEST(LatencyRecorder, MinMaxMean) {
  LatencyRecorder recorder;
  for (double v : {5.0, 1.0, 3.0}) recorder.Add(v);
  EXPECT_EQ(recorder.Min(), 1.0);
  EXPECT_EQ(recorder.Max(), 5.0);
  EXPECT_DOUBLE_EQ(recorder.Mean(), 3.0);
  EXPECT_EQ(recorder.count(), 3u);
}

TEST(LatencyRecorder, PercentilesOfKnownDistribution) {
  LatencyRecorder recorder;
  for (int i = 1; i <= 100; ++i) recorder.Add(i);
  EXPECT_NEAR(recorder.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(recorder.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(recorder.Percentile(50), 50.5, 1.0);
  EXPECT_NEAR(recorder.Percentile(99), 99.0, 1.1);
}

TEST(LatencyRecorder, AddAfterPercentileStillCorrect) {
  LatencyRecorder recorder;
  recorder.Add(10);
  EXPECT_EQ(recorder.Percentile(50), 10);
  recorder.Add(20);  // must re-sort internally
  EXPECT_EQ(recorder.Max(), 20);
  EXPECT_NEAR(recorder.Percentile(100), 20, 1e-9);
}

// Naive percentile over an unsorted copy, using the recorder's
// interpolation formula — the reference for the cache-invalidation test.
double NaivePercentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

// Regression for the stale sort cache: the old boolean `sorted_` flag was
// never cleared by Add()/Clear(), so any Percentile() after a Percentile()
// and a mutation consulted a stale order. Interleave mutations and queries
// randomly and compare every answer against the naive reference.
TEST(LatencyRecorder, RandomInterleavedMutationAndQuery) {
  Rng rng(77);
  LatencyRecorder recorder;
  std::vector<double> reference;
  for (int step = 0; step < 5000; ++step) {
    uint64_t action = rng.Uniform(10);
    if (action < 6) {
      double v = rng.NextDouble() * 1000.0;
      recorder.Add(v);
      reference.push_back(v);
    } else if (action < 9) {
      double p = static_cast<double>(rng.Uniform(101));
      ASSERT_NEAR(recorder.Percentile(p), NaivePercentile(reference, p),
                  1e-9)
          << "step " << step << " p" << p;
    } else if (rng.Uniform(20) == 0) {
      recorder.Clear();
      reference.clear();
    }
  }
}

// The precise failure mode of the old flag: query (caches the sort), add an
// element smaller than the minimum, query again.
TEST(LatencyRecorder, SortCacheInvalidatedByAdd) {
  LatencyRecorder recorder;
  recorder.Add(50);
  recorder.Add(60);
  EXPECT_DOUBLE_EQ(recorder.Percentile(0), 50.0);
  recorder.Add(10);  // must invalidate the cached order
  EXPECT_DOUBLE_EQ(recorder.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(recorder.Percentile(100), 60.0);
  recorder.Clear();
  recorder.Add(7);
  EXPECT_DOUBLE_EQ(recorder.Percentile(50), 7.0);
}

TEST(LatencyRecorder, CandlestickOrdering) {
  LatencyRecorder recorder;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) recorder.Add(rng.NextDouble());
  auto candle = recorder.Candlestick();
  EXPECT_LE(candle.min, candle.p25);
  EXPECT_LE(candle.p25, candle.p50);
  EXPECT_LE(candle.p50, candle.p75);
  EXPECT_LE(candle.p75, candle.max);
}

TEST(Counter, RatePerSec) {
  Counter counter;
  counter.Add(500);
  EXPECT_DOUBLE_EQ(counter.RatePerSec(Ms(500)), 1000.0);
  EXPECT_EQ(counter.RatePerSec(0), 0.0);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_EQ(a.Next(), b.Next());
  Rng a2(42);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(Rng, UniformWithinBound) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.UniformRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / 20000, 5.0, 0.3);
}

}  // namespace
}  // namespace xssd::sim
