#include "sim/interval_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/random.h"

namespace xssd::sim {
namespace {

TEST(IntervalSet, EmptyHasNoCoverage) {
  IntervalSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.ContiguousEnd(0), 0u);
  EXPECT_FALSE(set.Contains(0));
  EXPECT_FALSE(set.HasGapAfter(0));
}

TEST(IntervalSet, SingleInterval) {
  IntervalSet set;
  set.Insert(10, 20);
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_TRUE(set.Contains(10));
  EXPECT_TRUE(set.Contains(19));
  EXPECT_FALSE(set.Contains(20));
  EXPECT_EQ(set.ContiguousEnd(10), 20u);
  EXPECT_EQ(set.ContiguousEnd(0), 0u);  // hole before 10
  EXPECT_TRUE(set.HasGapAfter(0));
}

TEST(IntervalSet, AbuttingIntervalsMerge) {
  IntervalSet set;
  set.Insert(0, 10);
  set.Insert(10, 20);
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.ContiguousEnd(0), 20u);
}

TEST(IntervalSet, OverlappingIntervalsMerge) {
  IntervalSet set;
  set.Insert(0, 15);
  set.Insert(10, 25);
  set.Insert(5, 8);
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.ContiguousEnd(0), 25u);
}

TEST(IntervalSet, GapDetectedAndFilled) {
  IntervalSet set;
  set.Insert(0, 100);
  set.Insert(200, 300);  // hole [100, 200)
  EXPECT_EQ(set.ContiguousEnd(0), 100u);
  EXPECT_TRUE(set.HasGapAfter(0));
  set.Insert(100, 200);  // fill it
  EXPECT_EQ(set.ContiguousEnd(0), 300u);
  EXPECT_FALSE(set.HasGapAfter(0));
  EXPECT_EQ(set.interval_count(), 1u);
}

TEST(IntervalSet, InsertSwallowsMultipleSuccessors) {
  IntervalSet set;
  set.Insert(10, 20);
  set.Insert(30, 40);
  set.Insert(50, 60);
  set.Insert(0, 100);
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.ContiguousEnd(0), 100u);
}

TEST(IntervalSet, EmptyInsertIgnored) {
  IntervalSet set;
  set.Insert(5, 5);
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, TrimBelowDropsConsumedData) {
  IntervalSet set;
  set.Insert(0, 100);
  set.Insert(200, 300);
  set.TrimBelow(50);
  EXPECT_FALSE(set.Contains(10));
  EXPECT_TRUE(set.Contains(50));
  EXPECT_EQ(set.ContiguousEnd(50), 100u);
  set.TrimBelow(250);
  EXPECT_EQ(set.ContiguousEnd(250), 300u);
  EXPECT_EQ(set.interval_count(), 1u);
}

TEST(IntervalSet, ClearEmpties) {
  IntervalSet set;
  set.Insert(0, 10);
  set.Clear();
  EXPECT_TRUE(set.empty());
}

// Property: inserting any permutation of a partition of [0, N) yields full
// coverage with a single interval — the CMB "mostly sequential" tolerance.
class IntervalSetPermutationTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(IntervalSetPermutationTest, AnyInsertOrderCoversRange) {
  Rng rng(GetParam());
  // Random partition of [0, 4096) into chunks of 1..128 bytes.
  std::vector<std::pair<uint64_t, uint64_t>> chunks;
  uint64_t at = 0;
  while (at < 4096) {
    uint64_t len = std::min<uint64_t>(1 + rng.Uniform(128), 4096 - at);
    chunks.push_back({at, at + len});
    at += len;
  }
  // Shuffle.
  for (size_t i = chunks.size(); i > 1; --i) {
    std::swap(chunks[i - 1], chunks[rng.Uniform(i)]);
  }
  IntervalSet set;
  uint64_t inserted = 0;
  for (auto [begin, end] : chunks) {
    set.Insert(begin, end);
    inserted += end - begin;
    // Invariant: contiguous prefix never exceeds total inserted bytes.
    EXPECT_LE(set.ContiguousEnd(0), inserted);
  }
  EXPECT_EQ(set.ContiguousEnd(0), 4096u);
  EXPECT_EQ(set.interval_count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetPermutationTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace xssd::sim
