// Golden-value tests pinning sim::Rng's output streams.
//
// Everything downstream that claims "reproducible from a seed" — fault
// plans, the conformance fuzzer's schedules, workload mixes — depends on
// Rng(seed) producing the exact same stream on every platform and
// toolchain. The implementation is self-contained (xoshiro256** over
// uint64_t with SplitMix64 seeding, no std:: distributions), so these
// constants must never change; a failure here means the engine drifted
// and every recorded seed and trace in CI history silently re-rolls.

#include "sim/random.h"

#include <gtest/gtest.h>

namespace xssd::sim {
namespace {

TEST(RngGolden, Seed0) {
  Rng rng(0);
  const uint64_t want[] = {
      0x99ec5f36cb75f2b4ull, 0xbf6e1f784956452aull, 0x1a5f849d4933e6e0ull,
      0x6aa594f1262d2d2cull, 0xbba5ad4a1f842e59ull,
  };
  for (uint64_t w : want) EXPECT_EQ(rng.Next(), w);
}

TEST(RngGolden, Seed1) {
  Rng rng(1);
  const uint64_t want[] = {
      0xb3f2af6d0fc710c5ull, 0x853b559647364ceaull, 0x92f89756082a4514ull,
      0x642e1c7bc266a3a7ull, 0xb27a48e29a233673ull,
  };
  for (uint64_t w : want) EXPECT_EQ(rng.Next(), w);
}

TEST(RngGolden, Seed42) {
  Rng rng(42);
  const uint64_t want[] = {
      0x15780b2e0c2ec716ull, 0x6104d9866d113a7eull, 0xae17533239e499a1ull,
      0xecb8ad4703b360a1ull, 0xfde6dc7fe2ec5e64ull,
  };
  for (uint64_t w : want) EXPECT_EQ(rng.Next(), w);
}

TEST(RngGolden, LargeSeed) {
  Rng rng(0xDEADBEEFull);
  const uint64_t want[] = {
      0xc5555444a74d7e83ull, 0x65c30d37b4b16e38ull, 0x54f773200a4efa23ull,
      0x429aed75fb958af7ull, 0xfb0e1dd69c255b2eull,
  };
  for (uint64_t w : want) EXPECT_EQ(rng.Next(), w);
}

TEST(RngGolden, UniformStream) {
  Rng rng(7);
  const uint64_t want[] = {94, 74, 38, 64, 64, 21, 16, 96};
  for (uint64_t w : want) EXPECT_EQ(rng.Uniform(100), w);
}

TEST(RngGolden, DoubleStream) {
  // NextDouble() is (Next() >> 11) * 2^-53 — pure integer-to-double with
  // an exactly representable scale, so it is bit-exact across platforms.
  Rng rng(7);
  EXPECT_EQ(rng.NextDouble(), 0.7005764821796896);
  EXPECT_EQ(rng.NextDouble(), 0.27875122947378428);
  EXPECT_EQ(rng.NextDouble(), 0.83962746187641979);
  EXPECT_EQ(rng.NextDouble(), 0.98109772501493508);
}

TEST(RngGolden, BernoulliCount) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 1000; ++i) heads += rng.Bernoulli(0.3);
  EXPECT_EQ(heads, 314);
}

TEST(RngGolden, SameSeedSameStream) {
  Rng a(123456789), b(123456789);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.Next(), b.Next());
}

TEST(RngGolden, DistinctSeedsDiverge) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 8 && !differ; ++i) differ = a.Next() != b.Next();
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace xssd::sim
