#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace xssd::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0u);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&]() { order.push_back(3); });
  sim.Schedule(10, [&]() { order.push_back(1); });
  sim.Schedule(20, [&]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30u);
}

TEST(Simulator, EqualTimestampsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i]() { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, CallbacksMayScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 100) sim.Schedule(1, chain);
  };
  sim.Schedule(1, chain);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.Now(), 100u);
}

TEST(Simulator, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  int ran = 0;
  sim.Schedule(10, [&]() { ++ran; });
  sim.Schedule(50, [&]() { ++ran; });
  sim.RunUntil(30);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.Now(), 30u);  // clock advances to the deadline
  sim.Run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, RunForIsRelative) {
  Simulator sim;
  sim.Schedule(100, []() {});
  sim.RunFor(60);
  EXPECT_EQ(sim.Now(), 60u);
  sim.RunFor(60);
  EXPECT_EQ(sim.Now(), 120u);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, StopAbortsRun) {
  Simulator sim;
  int ran = 0;
  sim.Schedule(1, [&]() {
    ++ran;
    sim.Stop();
  });
  sim.Schedule(2, [&]() { ++ran; });
  sim.Run();
  EXPECT_EQ(ran, 1);
  sim.Run();  // resumes
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, RunWhileStopsOnPredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(i + 1, [&]() { ++count; });
  }
  bool satisfied = sim.RunWhile([&]() { return count == 4; });
  EXPECT_TRUE(satisfied);
  EXPECT_EQ(count, 4);
}

TEST(Simulator, RunWhileReturnsFalseWhenQueueDrains) {
  Simulator sim;
  sim.Schedule(1, []() {});
  bool satisfied = sim.RunWhile([]() { return false; });
  EXPECT_FALSE(satisfied);
}

TEST(Simulator, ExecutedEventCountAccumulates) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.Schedule(i, []() {});
  sim.Run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(SimTime, UnitHelpers) {
  EXPECT_EQ(Us(3), 3000u);
  EXPECT_EQ(Ms(2), 2000000u);
  EXPECT_EQ(Sec(1), 1000000000u);
  EXPECT_EQ(UsF(0.4), 400u);
  EXPECT_DOUBLE_EQ(ToUs(1500), 1.5);
}

TEST(SimTime, TransferTimeRoundsUpToOneNs) {
  EXPECT_EQ(TransferTime(0, 1e9), 0u);
  EXPECT_EQ(TransferTime(1, 100e9), 1u);     // sub-ns clamps to 1
  EXPECT_EQ(TransferTime(2000, 2e9), 1000u); // 2000 B at 2 GB/s = 1 us
}

}  // namespace
}  // namespace xssd::sim
