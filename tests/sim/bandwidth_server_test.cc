#include "sim/bandwidth_server.h"

#include <gtest/gtest.h>

namespace xssd::sim {
namespace {

TEST(BandwidthServer, SingleTransferTakesBytesOverRate) {
  Simulator sim;
  BandwidthServer server(&sim, 1e9);  // 1 GB/s = 1 byte/ns
  SimTime done = server.Acquire(1000);
  EXPECT_EQ(done, 1000u);
}

TEST(BandwidthServer, BackToBackTransfersQueueFifo) {
  Simulator sim;
  BandwidthServer server(&sim, 1e9);
  EXPECT_EQ(server.Acquire(100), 100u);
  EXPECT_EQ(server.Acquire(100), 200u);  // starts after the first
  EXPECT_EQ(server.Acquire(50), 250u);
}

TEST(BandwidthServer, IdleGapResetsStart) {
  Simulator sim;
  BandwidthServer server(&sim, 1e9);
  server.Acquire(100);
  sim.Schedule(500, []() {});
  sim.Run();
  EXPECT_EQ(sim.Now(), 500u);
  EXPECT_TRUE(server.IdleNow());
  EXPECT_EQ(server.Acquire(100), 600u);  // starts now, not at 200
}

TEST(BandwidthServer, PerRequestOverheadCharged) {
  Simulator sim;
  BandwidthServer server(&sim, 1e9, /*per_request_overhead=*/50);
  EXPECT_EQ(server.Acquire(100), 150u);
  EXPECT_EQ(server.Acquire(100), 300u);
}

TEST(BandwidthServer, CallbackFiresAtCompletion) {
  Simulator sim;
  BandwidthServer server(&sim, 1e9);
  SimTime fired_at = 0;
  server.Acquire(123, [&]() { fired_at = sim.Now(); });
  sim.Run();
  EXPECT_EQ(fired_at, 123u);
}

TEST(BandwidthServer, ProbeDoesNotReserve) {
  Simulator sim;
  BandwidthServer server(&sim, 1e9);
  EXPECT_EQ(server.Probe(100), 100u);
  EXPECT_EQ(server.Probe(100), 100u);  // unchanged
  server.Acquire(100);
  EXPECT_EQ(server.Probe(100), 200u);
}

TEST(BandwidthServer, StatsAccumulateAndReset) {
  Simulator sim;
  BandwidthServer server(&sim, 1e9);
  server.Acquire(100);
  server.Acquire(200);
  EXPECT_EQ(server.total_bytes(), 300u);
  EXPECT_EQ(server.total_requests(), 2u);
  EXPECT_EQ(server.busy_time(), 300u);
  server.ResetStats();
  EXPECT_EQ(server.total_bytes(), 0u);
}

TEST(BandwidthServer, ZeroByteRequestCostsOnlyOverhead) {
  Simulator sim;
  BandwidthServer server(&sim, 1e9, 10);
  EXPECT_EQ(server.Acquire(0), 10u);
}

}  // namespace
}  // namespace xssd::sim
