// Multi-domain scheduler tests: the conservative parallel backend against
// the serial wheel/heap merges. The contract under test: with fabrics
// partitioned into domains and a declared NTB lookahead, every domain
// executes exactly the same local (when, id) sequence on every backend —
// cross-domain events included — and the adversarial edges (cross arrival
// exactly at the lookahead boundary, zero-delay bursts scheduled from a
// cross arrival, mailbox ring overflow, Stop() mid-run, trace-sink
// fallback) change nothing.

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace xssd::sim {
namespace {

using Backend = Simulator::SchedulerBackend;

constexpr uint32_t kDomains = 4;
constexpr SimTime kLookahead = 1000;

// Per-domain execution log. Under the parallel backend each entry vector is
// appended only by its own worker thread; a global interleaving is not
// observable (and is not the contract) — the contract is that every domain
// sees the same local sequence as the serial merges produce.
struct DomainLog {
  Rng rng{0};
  std::vector<std::pair<SimTime, uint64_t>> fired;
  uint64_t budget = 0;
  uint64_t next_id = 0;
  uint64_t cross_sent = 0;
};

struct World {
  Simulator* sim = nullptr;
  std::array<DomainLog, kDomains> dom;

  void Record(uint32_t d, uint64_t id) {
    dom[d].fired.push_back({sim->Now(), id});
  }
};

struct Tail {
  World* w;
  uint32_t d;
  uint64_t id;
  void operator()() const { w->Record(d, id); }
};

struct CrossArrival {
  World* w;
  uint32_t d;
  uint64_t id;
  void operator()() const {
    w->Record(d, id);
    // A zero-delay local scheduled from a cross arrival: in the serial
    // merge the target's wheel clock may already sit past this timestamp
    // (the arrival came through the inbox), so this exercises the
    // behind-the-clock insert path.
    w->sim->Schedule(0, Tail{w, d, id + 1});
  }
};

struct Chain {
  World* w;
  uint32_t d;
  void operator()() const {
    DomainLog& log = w->dom[d];
    w->Record(d, log.next_id++);
    if (log.budget == 0) return;
    --log.budget;
    uint64_t pick = log.rng.Uniform(100);
    if (pick < 10) {
      // Same-timestamp burst: zero-delay sibling with a later seq.
      w->sim->Schedule(0, Tail{w, d, log.next_id++});
    }
    if (pick >= 90) {
      uint32_t peer = (d + 1) % kDomains;
      // Sometimes exactly the lookahead — the tightest legal cross edge.
      SimTime hop = kLookahead + (pick == 99 ? 0 : log.rng.Uniform(800));
      uint64_t cross_id =
          1000000000ull * (d + 1) + 2 * log.cross_sent++;
      w->sim->ScheduleIn(peer, hop, CrossArrival{w, peer, cross_id});
    }
    w->sim->Schedule(log.rng.Uniform(3000), Chain{w, d});
  }
};

struct RunResult {
  std::array<std::vector<std::pair<SimTime, uint64_t>>, kDomains> fired;
  SimTime final_now = 0;
  uint64_t executed = 0;
  uint64_t cross = 0;
};

RunResult RunWorkload(Backend backend, uint64_t seed,
                      bool stuttered_run_until = false) {
  Simulator sim(backend);
  sim.ConfigureDomains(kDomains);
  sim.DeclareLookahead(kLookahead);
  World w;
  w.sim = &sim;
  for (uint32_t d = 0; d < kDomains; ++d) {
    w.dom[d].rng = Rng(seed * 100 + d);
    w.dom[d].budget = 3000;
    Simulator::DomainScope scope(&sim, d);
    for (int i = 0; i < 32; ++i) {
      sim.Schedule(w.dom[d].rng.Uniform(2000), Chain{&w, d});
    }
  }
  if (stuttered_run_until) {
    // Interleave bounded segments with the free-running drain so window
    // planning restarts from arbitrary mid-schedule states.
    SimTime t = 0;
    Rng steps(seed ^ 0x5eed);
    for (int i = 0; i < 6 && !sim.empty(); ++i) {
      t += steps.Uniform(200000) + 1;
      sim.RunUntil(t);
    }
  }
  sim.Run();
  RunResult out;
  for (uint32_t d = 0; d < kDomains; ++d) out.fired[d] = w.dom[d].fired;
  out.final_now = sim.Now();
  out.executed = sim.executed_events();
  out.cross = sim.cross_scheduled_events();
  return out;
}

void ExpectSameResult(const RunResult& a, const RunResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.final_now, b.final_now) << label;
  EXPECT_EQ(a.executed, b.executed) << label;
  EXPECT_EQ(a.cross, b.cross) << label;
  for (uint32_t d = 0; d < kDomains; ++d) {
    ASSERT_EQ(a.fired[d].size(), b.fired[d].size())
        << label << " domain " << d;
    for (size_t i = 0; i < a.fired[d].size(); ++i) {
      ASSERT_EQ(a.fired[d][i], b.fired[d][i])
          << label << " domain " << d << " event " << i;
    }
  }
}

TEST(ParallelSchedulerTest, MatchesSerialBackendsOnRandomMultiDomainRuns) {
  for (uint64_t seed : {1u, 2u, 5u}) {
    auto wheel = RunWorkload(Backend::kWheel, seed);
    auto heap = RunWorkload(Backend::kHeap, seed);
    auto par = RunWorkload(Backend::kParallel, seed);
    ASSERT_GT(wheel.cross, 0u) << "workload sent no cross events";
    ExpectSameResult(wheel, heap, "wheel-vs-heap seed " + std::to_string(seed));
    ExpectSameResult(wheel, par, "wheel-vs-par seed " + std::to_string(seed));
  }
}

TEST(ParallelSchedulerTest, MatchesSerialAcrossStutteredRunUntilSegments) {
  for (uint64_t seed : {3u, 11u}) {
    auto wheel = RunWorkload(Backend::kWheel, seed, /*stuttered=*/true);
    auto par = RunWorkload(Backend::kParallel, seed, /*stuttered=*/true);
    ExpectSameResult(wheel, par, "stuttered seed " + std::to_string(seed));
  }
}

// A cross event landing exactly at sender_now + lookahead, tied with a
// pre-existing local at the same timestamp: locals win the tie on every
// backend, and the arrival time is exact.
TEST(ParallelSchedulerTest, CrossAtExactLookaheadBoundaryTiesLocalFirst) {
  for (Backend backend :
       {Backend::kWheel, Backend::kHeap, Backend::kParallel}) {
    Simulator sim(backend);
    sim.ConfigureDomains(2);
    sim.DeclareLookahead(kLookahead);
    std::vector<std::pair<SimTime, int>> got;  // only domain-1 events record
    {
      Simulator::DomainScope scope(&sim, 1);
      sim.ScheduleAt(1500, [&]() { got.push_back({sim.Now(), 1}); });
    }
    {
      Simulator::DomainScope scope(&sim, 0);
      sim.ScheduleAt(500, [&]() {
        sim.ScheduleIn(1, kLookahead,
                       [&]() { got.push_back({sim.Now(), 2}); });
      });
    }
    sim.Run();
    ASSERT_EQ(got.size(), 2u) << "backend " << static_cast<int>(backend);
    EXPECT_EQ(got[0], (std::pair<SimTime, int>{1500, 1}));
    EXPECT_EQ(got[1], (std::pair<SimTime, int>{1500, 2}));
    EXPECT_EQ(sim.cross_scheduled_events(), 1u);
  }
}

// Zero-delay bursts scheduled from inside a cross arrival keep FIFO order
// at one timestamp on every backend.
TEST(ParallelSchedulerTest, ZeroDelayBurstFromCrossArrivalKeepsFifo) {
  for (Backend backend :
       {Backend::kWheel, Backend::kHeap, Backend::kParallel}) {
    Simulator sim(backend);
    sim.ConfigureDomains(2);
    sim.DeclareLookahead(kLookahead);
    std::vector<int> order;
    {
      Simulator::DomainScope scope(&sim, 0);
      sim.ScheduleAt(100, [&]() {
        sim.ScheduleIn(1, kLookahead + 50, [&]() {
          order.push_back(0);
          for (int b = 1; b <= 4; ++b) {
            sim.Schedule(0, [&order, b]() { order.push_back(b); });
          }
        });
      });
    }
    sim.Run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}))
        << "backend " << static_cast<int>(backend);
    EXPECT_EQ(sim.Now(), 1150u);
  }
}

// More cross events in one window than the SPSC mailbox ring holds: the
// spill path must preserve order and the run must match the serial wheel.
TEST(ParallelSchedulerTest, MailboxRingOverflowSpillsWithoutReordering) {
  constexpr int kBurst = 1500;  // ring capacity is 1024
  auto run = [&](Backend backend, uint64_t* spills) {
    Simulator sim(backend);
    sim.ConfigureDomains(2);
    sim.DeclareLookahead(kLookahead);
    std::vector<std::pair<SimTime, int>> got;
    {
      Simulator::DomainScope scope(&sim, 0);
      sim.ScheduleAt(10, [&]() {
        for (int i = 0; i < kBurst; ++i) {
          sim.ScheduleIn(1, kLookahead + i % 7, [&got, i, &sim]() {
            got.push_back({sim.Now(), i});
          });
        }
      });
    }
    sim.Run();
    if (spills != nullptr) *spills = sim.mailbox_spills();
    return got;
  };
  uint64_t spills = 0;
  auto wheel = run(Backend::kWheel, nullptr);
  auto par = run(Backend::kParallel, &spills);
  ASSERT_EQ(wheel.size(), static_cast<size_t>(kBurst));
  ASSERT_EQ(par.size(), wheel.size());
  for (size_t i = 0; i < wheel.size(); ++i) {
    ASSERT_EQ(wheel[i], par[i]) << "event " << i;
  }
  EXPECT_GT(spills, 0u) << "burst never overflowed the mailbox ring";
}

// Stop() under the parallel backend takes effect at a window boundary —
// deterministically — and resuming completes the schedule with the same
// per-domain sequences the serial wheel produces.
TEST(ParallelSchedulerTest, StopIsDeterministicAndResumable) {
  constexpr uint64_t kSeed = 9;
  auto run_with_stop = [&](Backend backend, uint64_t* after_stop) {
    Simulator sim(backend);
    sim.ConfigureDomains(kDomains);
    sim.DeclareLookahead(kLookahead);
    World w;
    w.sim = &sim;
    for (uint32_t d = 0; d < kDomains; ++d) {
      w.dom[d].rng = Rng(kSeed * 100 + d);
      w.dom[d].budget = 800;
      Simulator::DomainScope scope(&sim, d);
      for (int i = 0; i < 16; ++i) {
        sim.Schedule(w.dom[d].rng.Uniform(2000), Chain{&w, d});
      }
    }
    {
      Simulator::DomainScope scope(&sim, 2);
      sim.ScheduleAt(50000, [&]() { sim.Stop(); });
    }
    sim.Run();  // halts at the stop (serial: immediately; parallel: at the
                // enclosing window boundary — both deterministic)
    if (after_stop != nullptr) *after_stop = sim.executed_events();
    sim.Run();  // resume to drain
    RunResult out;
    for (uint32_t d = 0; d < kDomains; ++d) out.fired[d] = w.dom[d].fired;
    out.final_now = sim.Now();
    out.executed = sim.executed_events();
    out.cross = sim.cross_scheduled_events();
    return out;
  };
  uint64_t stop_a = 0, stop_b = 0;
  auto par_a = run_with_stop(Backend::kParallel, &stop_a);
  auto par_b = run_with_stop(Backend::kParallel, &stop_b);
  EXPECT_EQ(stop_a, stop_b) << "parallel stop point is nondeterministic";
  auto wheel = run_with_stop(Backend::kWheel, nullptr);
  ExpectSameResult(wheel, par_a, "stop/resume");
  ExpectSameResult(par_a, par_b, "stop/resume repeat");
}

// Attaching a trace sink pins the parallel backend to its serial merge
// (span/trace sinks are not thread-safe); the run must complete without
// spinning up windows and still match the wheel.
class CountingSink : public obs::TraceSink {
 public:
  void OnEventScheduled(SimTime, SimTime, uint64_t) override { ++scheduled_; }
  void OnEventBegin(SimTime, uint64_t) override { ++begun_; }
  void OnEventEnd(SimTime, uint64_t) override {}
  void OnInstant(const char*, SimTime) override {}
  void OnCounterSample(const char*, SimTime, double) override {}
  uint64_t scheduled_ = 0;
  uint64_t begun_ = 0;
};

TEST(ParallelSchedulerTest, TraceSinkForcesSerialFallback) {
  Simulator sim(Backend::kParallel);
  sim.ConfigureDomains(2);
  sim.DeclareLookahead(kLookahead);
  CountingSink sink;
  sim.set_trace_sink(&sink);
  std::vector<int> order;
  {
    Simulator::DomainScope scope(&sim, 0);
    sim.ScheduleAt(10, [&]() {
      order.push_back(0);
      sim.ScheduleIn(1, kLookahead, [&]() { order.push_back(1); });
    });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(sim.parallel_windows(), 0u) << "workers ran despite trace sink";
  EXPECT_EQ(sink.begun_, 2u);
  EXPECT_EQ(sink.scheduled_, 2u);
}

TEST(ParallelSchedulerTest, IdleSchedulingTargetsScopedDomain) {
  Simulator sim(Backend::kParallel);
  sim.ConfigureDomains(3);
  sim.DeclareLookahead(kLookahead);
  uint32_t ran_in = 99;
  {
    Simulator::DomainScope scope(&sim, 2);
    sim.Schedule(5, [&]() { ran_in = sim.current_domain(); });
  }
  EXPECT_EQ(sim.domain_pending_events(2), 1u);
  EXPECT_EQ(sim.domain_pending_events(0), 0u);
  sim.Run();
  EXPECT_EQ(ran_in, 2u);
}

// The lookahead contract is load-bearing: a cross-domain event closer than
// the declared lookahead would let a worker's past change, so the
// scheduler refuses it outright (on every backend — the serial merges
// enforce the same contract the workers depend on).
TEST(ParallelSchedulerDeathTest, CrossEventBelowLookaheadAborts) {
  EXPECT_DEATH(
      {
        Simulator sim(Backend::kWheel);
        sim.ConfigureDomains(2);
        sim.DeclareLookahead(kLookahead);
        Simulator::DomainScope scope(&sim, 0);
        sim.ScheduleAt(100, [&]() {
          sim.ScheduleIn(1, kLookahead / 2, []() {});
        });
        sim.Run();
      },
      "CHECK failed");
}

TEST(ParallelSchedulerDeathTest, CrossEventWithoutLookaheadAborts) {
  EXPECT_DEATH(
      {
        Simulator sim(Backend::kWheel);
        sim.ConfigureDomains(2);
        Simulator::DomainScope scope(&sim, 0);
        sim.ScheduleAt(100, [&]() { sim.ScheduleIn(1, 5000, []() {}); });
        sim.Run();
      },
      "CHECK failed");
}

}  // namespace
}  // namespace xssd::sim
