// Adversarial scheduler properties, parameterized over all three backends.
// The timer wheel and the parallel backend must be indistinguishable from
// the legacy binary heap: same (when, seq) total order, same clock
// semantics at bucket edges, same Stop()/resume behavior — plus wheel-only
// guarantees (allocation-free steady state) and the past-schedule clamp
// contract. (On these single-domain schedules the parallel backend runs
// its serial merge; the multi-domain worker paths are covered by
// parallel_scheduler_test.cc.)

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_pool.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "sim/timer_wheel.h"

namespace xssd::sim {
namespace {

using Backend = Simulator::SchedulerBackend;

constexpr SimTime kSlotSpan = TimerWheel::kSlots;            // 64 ns
constexpr SimTime kLevel1Span = kSlotSpan * kSlotSpan;       // 4096 ns
constexpr SimTime kLevel2Span = kLevel1Span * kSlotSpan;     // 262144 ns
constexpr SimTime kHorizon = SimTime{1} << TimerWheel::kHorizonBits;

class SchedulerPropertyTest : public ::testing::TestWithParam<Backend> {};

std::string BackendName(const ::testing::TestParamInfo<Backend>& info) {
  switch (info.param) {
    case Backend::kHeap:
      return "heap";
    case Backend::kParallel:
      return "parallel";
    default:
      return "wheel";
  }
}

TEST_P(SchedulerPropertyTest, FifoAcrossBucketBoundaries) {
  Simulator sim(GetParam());
  // Same-timestamp runs placed exactly on and around every wheel
  // boundary: level-0 slot edges, level-1/level-2 slot edges, and the
  // overflow horizon. Scheduling order must be preserved per timestamp.
  std::vector<SimTime> stamps = {
      kSlotSpan - 1,     kSlotSpan,     kSlotSpan + 1,
      kLevel1Span - 1,   kLevel1Span,   kLevel1Span + 1,
      kLevel2Span - 1,   kLevel2Span,   kLevel2Span + 1,
      kHorizon - 1,      kHorizon,      kHorizon + 1,
  };
  std::vector<std::pair<SimTime, int>> fired;
  // Interleave: for each copy index, walk all stamps — so equal-timestamp
  // events are scheduled far apart in seq space.
  for (int copy = 0; copy < 5; ++copy) {
    for (SimTime t : stamps) {
      sim.ScheduleAt(t, [&fired, t, copy]() { fired.push_back({t, copy}); });
    }
  }
  sim.Run();
  ASSERT_EQ(fired.size(), stamps.size() * 5);
  for (size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first) << "time order at " << i;
    if (fired[i - 1].first == fired[i].first) {
      EXPECT_LT(fired[i - 1].second, fired[i].second)
          << "FIFO violated at t=" << fired[i].first;
    }
  }
}

TEST_P(SchedulerPropertyTest, FarFutureAndNearInterleave) {
  Simulator sim(GetParam());
  std::vector<int> order;
  // Beyond the 2^48 ns wheel horizon (overflow path), mid-range, and
  // near-term events scheduled in shuffled order.
  sim.ScheduleAt(kHorizon * 3 + 17, [&]() { order.push_back(6); });
  sim.ScheduleAt(5, [&]() { order.push_back(1); });
  sim.ScheduleAt(kHorizon + 1, [&]() { order.push_back(5); });
  sim.ScheduleAt(kLevel2Span + 3, [&]() { order.push_back(3); });
  sim.ScheduleAt(6, [&]() { order.push_back(2); });
  sim.ScheduleAt(kHorizon - 2, [&]() { order.push_back(4); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(sim.Now(), kHorizon * 3 + 17);
}

TEST_P(SchedulerPropertyTest, NearEventScheduledFromFarCallback) {
  Simulator sim(GetParam());
  std::vector<int> order;
  sim.ScheduleAt(kHorizon + 100, [&]() {
    order.push_back(1);
    // From deep in the future, immediately reschedule nearby — including
    // the same timestamp (must run after already-queued same-time events).
    sim.Schedule(0, [&]() { order.push_back(3); });
    sim.Schedule(1, [&]() { order.push_back(4); });
  });
  sim.ScheduleAt(kHorizon + 100, [&]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST_P(SchedulerPropertyTest, RunUntilLandsExactlyOnBucketEdges) {
  for (SimTime edge : {kSlotSpan, kLevel1Span, kLevel2Span}) {
    Simulator sim(GetParam());
    int before = 0, at = 0, after = 0;
    sim.ScheduleAt(edge - 1, [&]() { ++before; });
    sim.ScheduleAt(edge, [&]() { ++at; });
    sim.ScheduleAt(edge + 1, [&]() { ++after; });
    // Deadline exactly on the edge: the edge event is <= deadline and must
    // fire; the event one tick later must not, and the clock must land on
    // the deadline itself.
    EXPECT_EQ(sim.RunUntil(edge), 2u) << "edge " << edge;
    EXPECT_EQ(before, 1);
    EXPECT_EQ(at, 1);
    EXPECT_EQ(after, 0);
    EXPECT_EQ(sim.Now(), edge);
    // Scheduling relative to the edge then draining still fires the rest.
    sim.Schedule(0, [&]() { ++at; });
    sim.Run();
    EXPECT_EQ(at, 2);
    EXPECT_EQ(after, 1);
    EXPECT_EQ(sim.Now(), edge + 1);
  }
}

TEST_P(SchedulerPropertyTest, RunUntilDeadlineBetweenBucketsAdvancesClock) {
  Simulator sim(GetParam());
  int ran = 0;
  sim.ScheduleAt(kLevel1Span * 7 + 13, [&]() { ++ran; });
  // Deadlines that stop strictly inside empty wheel regions.
  EXPECT_EQ(sim.RunUntil(kSlotSpan), 0u);
  EXPECT_EQ(sim.Now(), kSlotSpan);
  EXPECT_EQ(sim.RunUntil(kLevel1Span * 7), 0u);
  EXPECT_EQ(sim.Now(), kLevel1Span * 7);
  EXPECT_EQ(sim.RunUntil(kLevel1Span * 7 + 13), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST_P(SchedulerPropertyTest, StopMidStepAcrossLevelsThenResume) {
  Simulator sim(GetParam());
  std::vector<int> order;
  sim.ScheduleAt(10, [&]() {
    order.push_back(1);
    sim.Stop();
  });
  sim.ScheduleAt(10, [&]() { order.push_back(2); });
  sim.ScheduleAt(kLevel1Span + 5, [&]() { order.push_back(3); });
  sim.ScheduleAt(kHorizon + 5, [&]() { order.push_back(4); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.Now(), 10u);
  EXPECT_EQ(sim.pending_events(), 3u);
  sim.Run();  // resumes where it stopped, with order intact
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST_P(SchedulerPropertyTest, PastScheduleClampsToNowWithCounter) {
  Simulator sim(GetParam());
  sim.set_allow_past_schedules(true);
  std::vector<int> order;
  sim.ScheduleAt(100, [&]() {
    order.push_back(1);
    sim.ScheduleAt(100, [&]() { order.push_back(2); });  // same time: ok
    sim.ScheduleAt(40, [&]() { order.push_back(3); });   // past: clamped
  });
  sim.ScheduleAt(200, [&]() { order.push_back(4); });
  sim.Run();
  // The clamped event fires at Now()==100, after the already-queued
  // same-timestamp event (it got a later seq), before t=200.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.past_schedule_clamps(), 1u);
  EXPECT_EQ(sim.Now(), 200u);
}

// Differential property: a randomized schedule — bursts of equal
// timestamps, nested scheduling from callbacks, occasional far-future and
// beyond-horizon targets, interleaved RunUntil segments — must produce an
// identical execution sequence on both backends.
std::vector<std::pair<SimTime, uint64_t>> RunRandomSchedule(Backend backend,
                                                            uint64_t seed) {
  Simulator sim(backend);
  Rng rng(seed);
  std::vector<std::pair<SimTime, uint64_t>> fired;
  uint64_t next_id = 0;
  std::function<void(int)> spawn = [&](int depth) {
    uint64_t id = next_id++;
    uint64_t pick = rng.Uniform(100);
    SimTime delay;
    if (pick < 50) {
      delay = rng.Uniform(128);  // hammer level-0/1 boundaries
    } else if (pick < 75) {
      delay = rng.Uniform(2 * kLevel1Span);
    } else if (pick < 90) {
      delay = rng.Uniform(2 * kLevel2Span);
    } else if (pick < 97) {
      delay = rng.Uniform(Ms(50));
    } else {
      delay = kHorizon + rng.Uniform(kHorizon);  // overflow path
    }
    sim.Schedule(delay, [&fired, &rng, &spawn, &sim, id, depth]() {
      fired.push_back({sim.Now(), id});
      if (depth > 0) {
        uint64_t kids = rng.Uniform(3);
        for (uint64_t k = 0; k < kids; ++k) spawn(depth - 1);
        if (rng.Uniform(8) == 0) {
          // Same-timestamp burst scheduled from inside a callback.
          SimTime at = sim.Now() + rng.Uniform(96);
          for (int b = 0; b < 4; ++b) {
            uint64_t bid = 1000000 + id * 8 + static_cast<uint64_t>(b);
            sim.ScheduleAt(at, [&fired, &sim, bid]() {
              fired.push_back({sim.Now(), bid});
            });
          }
        }
      }
    });
  };
  for (int i = 0; i < 400; ++i) spawn(3);
  // Drain in stuttering RunUntil steps to cross bucket edges in every
  // possible phase, then finish with Run().
  SimTime t = 0;
  for (int i = 0; i < 200 && !sim.empty(); ++i) {
    t += rng.Uniform(2 * kLevel1Span) + 1;
    sim.RunUntil(t);
  }
  sim.Run();
  return fired;
}

TEST(SchedulerDifferentialTest, AllBackendsMatchOnRandomSchedules) {
  for (uint64_t seed : {1u, 2u, 3u, 7u, 42u}) {
    auto wheel = RunRandomSchedule(Backend::kWheel, seed);
    auto heap = RunRandomSchedule(Backend::kHeap, seed);
    auto par = RunRandomSchedule(Backend::kParallel, seed);
    ASSERT_EQ(wheel.size(), heap.size()) << "seed " << seed;
    ASSERT_EQ(wheel.size(), par.size()) << "seed " << seed;
    for (size_t i = 0; i < wheel.size(); ++i) {
      ASSERT_EQ(wheel[i], heap[i]) << "seed " << seed << " event " << i;
      ASSERT_EQ(wheel[i], par[i]) << "seed " << seed << " event " << i;
    }
  }
}

TEST(EventPoolTest, SteadyStateReusesNodesWithoutAllocating) {
  Simulator sim(Backend::kWheel);
  uint64_t fn_heap_before = EventFn::heap_fallbacks();
  // 1M schedule/fire cycles with a small pending set: after warmup the
  // pool must recycle the same nodes — one slab chunk, zero callback
  // spills — no matter how many events pass through.
  uint64_t remaining = 1000000;
  std::function<void()> chain = [&]() {
    if (remaining == 0) return;
    --remaining;
    sim.Schedule(1 + (remaining % 700), chain);
  };
  for (int i = 0; i < 8; ++i) sim.Schedule(i + 1, chain);
  sim.Run();
  EXPECT_EQ(remaining, 0u);
  EXPECT_EQ(sim.executed_events(), 1000008u);
  EXPECT_EQ(sim.event_pool().total_acquires(), 1000008u);
  EXPECT_EQ(sim.event_pool().live_nodes(), 0u);
  EXPECT_EQ(sim.event_pool().chunks_allocated(), 1u)
      << "pool grew despite bounded pending set";
  // `chain` is a std::function by reference — captured as one pointer, so
  // even the wrapper stays inline.
  EXPECT_EQ(EventFn::heap_fallbacks() - fn_heap_before, 0u);
}

TEST(EventPoolTest, PendingEventsReleasedOnSimulatorDestruction) {
  // Callbacks still queued at destruction must have their captures
  // destroyed (ASan would flag the leak of the shared_ptr otherwise).
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  {
    Simulator sim(Backend::kWheel);
    sim.Schedule(100, [token = std::move(token)]() { (void)*token; });
    sim.Schedule(kHorizon * 2, []() {});  // parked in overflow
    EXPECT_EQ(sim.pending_events(), 2u);
  }
  EXPECT_TRUE(watch.expired());
}

TEST(EventFnTest, LargeCapturesSpillToHeapAndStillRun) {
  uint64_t before = EventFn::heap_fallbacks();
  Simulator sim(Backend::kWheel);
  struct Big {
    uint64_t pad[12];  // 96 bytes: exceeds the 48-byte inline buffer
  };
  Big big{};
  big.pad[11] = 17;
  uint64_t got = 0;
  sim.Schedule(5, [big, &got]() { got = big.pad[11]; });
  sim.Run();
  EXPECT_EQ(got, 17u);
  EXPECT_EQ(EventFn::heap_fallbacks() - before, 1u);
}

INSTANTIATE_TEST_SUITE_P(Backends, SchedulerPropertyTest,
                         ::testing::Values(Backend::kWheel, Backend::kHeap,
                                           Backend::kParallel),
                         BackendName);

}  // namespace
}  // namespace xssd::sim
