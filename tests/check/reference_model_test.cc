// Unit tests for the conformance reference model: each protocol rule is
// exercised with a minimal conforming sequence and a minimal violation,
// so a regression in the oracle itself (accepting bad behaviour or
// rejecting good behaviour) is caught without running the simulator.

#include "check/reference_model.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace xssd::check {
namespace {

constexpr uint64_t kRingStart = 100;
constexpr uint64_t kRingCount = 8;

std::vector<uint8_t> Bytes(size_t n, uint8_t first = 0) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<uint8_t>(first + i);
  return v;
}

core::DestagePageHeader Page(uint64_t sequence, uint64_t stream_offset,
                             uint32_t data_len, uint32_t epoch = 0) {
  core::DestagePageHeader header;
  header.sequence = sequence;
  header.stream_offset = stream_offset;
  header.data_len = data_len;
  header.epoch = epoch;
  return header;
}

TEST(ReferenceModel, CleanAppendToDestageFlow) {
  ReferenceModel model(kRingStart, kRingCount);
  auto data = Bytes(64);
  model.OnAppend(data.data(), data.size());
  model.OnArrival(0, data.data(), data.size());
  model.OnCredit(64);
  model.OnEmit(Page(0, 0, 64), kRingStart);
  model.OnPageDurable(0, 64);
  model.OnDestaged(64);
  model.OnSyncComplete(/*written=*/64, /*credit_observed=*/64, /*ok=*/true,
                       /*halted=*/false);
  model.OnTailRead(data);
  EXPECT_TRUE(model.ok()) << model.Describe();
  EXPECT_EQ(model.credit(), 64u);
  EXPECT_EQ(model.destaged(), 64u);
}

TEST(ReferenceModel, OutOfOrderArrivalsCreditWaitsForGap) {
  ReferenceModel model(kRingStart, kRingCount);
  auto data = Bytes(32);
  model.OnAppend(data.data(), data.size());
  model.OnArrival(16, data.data() + 16, 16);  // second half first
  model.OnArrival(0, data.data(), 16);
  model.OnCredit(32);  // both halves arrived: full credit is legal
  EXPECT_TRUE(model.ok()) << model.Describe();
}

TEST(ReferenceModel, CreditBeforePersistIsOrderingViolation) {
  ReferenceModel model(kRingStart, kRingCount);
  auto data = Bytes(32);
  model.OnAppend(data.data(), data.size());
  model.OnArrival(0, data.data(), 16);
  model.OnCredit(32);  // acknowledges 16 un-arrived bytes
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.divergences().front().rule, "credit.persist_order");
}

TEST(ReferenceModel, CreditRegressionIsViolation) {
  ReferenceModel model(kRingStart, kRingCount);
  auto data = Bytes(32);
  model.OnAppend(data.data(), data.size());
  model.OnArrival(0, data.data(), data.size());
  model.OnCredit(32);
  model.OnCredit(16);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.divergences().front().rule, "credit.monotonic");
}

TEST(ReferenceModel, ArrivalByteCorruptionIsViolation) {
  ReferenceModel model(kRingStart, kRingCount);
  auto data = Bytes(16);
  model.OnAppend(data.data(), data.size());
  auto corrupt = data;
  corrupt[7] ^= 0xFF;
  model.OnArrival(0, corrupt.data(), corrupt.size());
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.divergences().front().rule, "arrival.bytes");
}

TEST(ReferenceModel, RingPositionLawEnforced) {
  ReferenceModel model(kRingStart, kRingCount);
  auto data = Bytes(16);
  model.OnAppend(data.data(), data.size());
  model.OnArrival(0, data.data(), data.size());
  model.OnCredit(16);
  // Sequence 0 must land at kRingStart + 0, not + 1.
  model.OnEmit(Page(0, 0, 16), kRingStart + 1);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.divergences().front().rule, "destage.ring_position");
}

TEST(ReferenceModel, RingPositionWrapsModuloCount) {
  ReferenceModel model(kRingStart, kRingCount);
  auto data = Bytes(16);
  for (uint64_t seq = 0; seq < kRingCount + 2; ++seq) {
    model.OnAppend(data.data(), data.size());
    model.OnArrival(seq * 16, data.data(), data.size());
    model.OnCredit((seq + 1) * 16);
    model.OnEmit(Page(seq, seq * 16, 16),
                 kRingStart + (seq % kRingCount));
  }
  EXPECT_TRUE(model.ok()) << model.Describe();
}

TEST(ReferenceModel, DestageBeyondCreditIsViolation) {
  ReferenceModel model(kRingStart, kRingCount);
  auto data = Bytes(32);
  model.OnAppend(data.data(), data.size());
  model.OnArrival(0, data.data(), 16);
  model.OnCredit(16);
  model.OnEmit(Page(0, 0, 32), kRingStart);  // 16 bytes past the credit
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.divergences().front().rule, "destage.credit_fence");
}

TEST(ReferenceModel, NonChainingPageIsViolation) {
  ReferenceModel model(kRingStart, kRingCount);
  auto data = Bytes(64);
  model.OnAppend(data.data(), data.size());
  model.OnArrival(0, data.data(), data.size());
  model.OnCredit(64);
  model.OnEmit(Page(0, 0, 16), kRingStart);
  model.OnEmit(Page(1, 32, 16), kRingStart + 1);  // skips [16, 32)
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.divergences().front().rule, "destage.chain");
}

TEST(ReferenceModel, DestagedCounterMustTrackDurablePrefix) {
  ReferenceModel model(kRingStart, kRingCount);
  auto data = Bytes(64);
  model.OnAppend(data.data(), data.size());
  model.OnArrival(0, data.data(), data.size());
  model.OnCredit(64);
  model.OnEmit(Page(0, 0, 32), kRingStart);
  model.OnEmit(Page(1, 32, 32), kRingStart + 1);
  model.OnPageDurable(32, 64);  // second page durable first
  model.OnDestaged(64);         // claims the gap [0, 32) settled
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.divergences().front().rule, "destaged.prefix");
}

TEST(ReferenceModel, ShadowCountersPerPeerMonotonic) {
  ReferenceModel model(kRingStart, kRingCount);
  auto data = Bytes(64);
  model.OnAppend(data.data(), data.size());
  model.OnShadow(0, 32);
  model.OnShadow(1, 16);  // independent peer, lower value is fine
  model.OnShadow(0, 64);
  EXPECT_TRUE(model.ok()) << model.Describe();
  model.OnShadow(0, 48);  // regression on peer 0
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.divergences().front().rule, "shadow.monotonic");
}

TEST(ReferenceModel, FsyncAcknowledgingUndurableBytesIsViolation) {
  ReferenceModel model(kRingStart, kRingCount);
  model.OnSyncComplete(/*written=*/100, /*credit_observed=*/50, /*ok=*/true,
                       /*halted=*/false);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.divergences().front().rule, "fsync.durability");
}

TEST(ReferenceModel, FsyncFailureAgainstLiveDeviceIsViolation) {
  ReferenceModel model(kRingStart, kRingCount);
  model.OnSyncComplete(/*written=*/0, /*credit_observed=*/0, /*ok=*/false,
                       /*halted=*/false);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.divergences().front().rule, "fsync.spurious_failure");
  // Against a halted device the same failure is the contract working.
  ReferenceModel halted(kRingStart, kRingCount);
  halted.OnSyncComplete(0, 0, /*ok=*/false, /*halted=*/true);
  EXPECT_TRUE(halted.ok());
}

TEST(ReferenceModel, TailReadsAreSequentialAndByteExact) {
  ReferenceModel model(kRingStart, kRingCount);
  auto data = Bytes(32);
  model.OnAppend(data.data(), data.size());
  model.OnTailRead(std::vector<uint8_t>(data.begin(), data.begin() + 16));
  auto second = std::vector<uint8_t>(data.begin() + 16, data.end());
  second[0] ^= 0xFF;
  model.OnTailRead(second);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.divergences().front().rule, "read.bytes");
}

TEST(ReferenceModel, GracefulCrashPromisesFullCredit) {
  ReferenceModel model(kRingStart, kRingCount);
  auto data = Bytes(64);
  model.OnAppend(data.data(), data.size());
  model.OnArrival(0, data.data(), data.size());
  model.OnCredit(64);
  model.OnCrash(/*graceful=*/true, /*credit_at_halt=*/64,
                /*destaged_settled=*/0);
  EXPECT_EQ(model.durable_lower_bound(), 64u);
  // Recovery returning only half the credit breaks the supercap promise.
  model.OnRecovery(0, std::vector<uint8_t>(data.begin(), data.begin() + 32),
                   /*epoch=*/0);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.divergences().front().rule, "recovery.durable_prefix");
}

TEST(ReferenceModel, HardCrashOnlyPromisesSettledProgress) {
  ReferenceModel model(kRingStart, kRingCount);
  auto data = Bytes(64);
  model.OnAppend(data.data(), data.size());
  model.OnArrival(0, data.data(), data.size());
  model.OnCredit(64);
  model.OnEmit(Page(0, 0, 32), kRingStart);
  model.OnPageDurable(0, 32);
  model.OnDestaged(32);
  model.OnCrash(/*graceful=*/false, /*credit_at_halt=*/64,
                /*destaged_settled=*/32);
  EXPECT_EQ(model.durable_lower_bound(), 32u);
  // Returning exactly the settled prefix conforms.
  model.OnRecovery(0, std::vector<uint8_t>(data.begin(), data.begin() + 32),
                   /*epoch=*/0);
  EXPECT_TRUE(model.ok()) << model.Describe();
}

TEST(ReferenceModel, RecoveryFabricatingBytesIsViolation) {
  ReferenceModel model(kRingStart, kRingCount);
  auto data = Bytes(16);
  model.OnAppend(data.data(), data.size());
  model.OnCrash(/*graceful=*/true, /*credit_at_halt=*/16,
                /*destaged_settled=*/16);
  model.OnRecovery(0, Bytes(32), /*epoch=*/0);  // 16 bytes never appended
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.divergences().front().rule, "recovery.bounds");
}

TEST(ReferenceModel, RecoveryFromWrongEpochIsViolation) {
  ReferenceModel model(kRingStart, kRingCount);
  auto data = Bytes(16);
  model.OnAppend(data.data(), data.size());
  model.OnCrash(/*graceful=*/true, /*credit_at_halt=*/16,
                /*destaged_settled=*/16);
  model.OnRecovery(0, data, /*epoch=*/3);  // crash happened in epoch 0
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.divergences().front().rule, "recovery.epoch");
}

TEST(ReferenceModel, RebootStartsFreshEpoch) {
  ReferenceModel model(kRingStart, kRingCount);
  auto data = Bytes(64);
  model.OnAppend(data.data(), data.size());
  model.OnArrival(0, data.data(), data.size());
  model.OnCredit(64);
  model.OnCrash(/*graceful=*/true, 64, 64);
  model.OnRecovery(0, data, /*epoch=*/0);
  model.OnReboot();
  EXPECT_EQ(model.epoch(), 1u);
  EXPECT_EQ(model.credit(), 0u);
  EXPECT_FALSE(model.crashed());
  // The new epoch accepts a fresh stream from offset 0, pages stamped 1.
  auto fresh = Bytes(16, /*first=*/0x80);
  model.OnAppend(fresh.data(), fresh.size());
  model.OnArrival(0, fresh.data(), fresh.size());
  model.OnCredit(16);
  model.OnEmit(Page(0, 0, 16, /*epoch=*/1), kRingStart);
  EXPECT_TRUE(model.ok()) << model.Describe();
}

TEST(ReferenceModel, HarnessFailuresAreRecorded) {
  ReferenceModel model(kRingStart, kRingCount);
  model.ReportFailure("harness.timeout", "op never completed");
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.Describe(), "harness.timeout: op never completed");
}

}  // namespace
}  // namespace xssd::check
