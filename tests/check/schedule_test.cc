// Tests for the schedule fuzzer: generation determinism, the text
// round-trip used for counterexample replay, payload stability under
// shrinking, and fault-plan compilation.

#include "check/schedule.h"

#include <gtest/gtest.h>

#include <string>

namespace xssd::check {
namespace {

bool SameSchedule(const Schedule& a, const Schedule& b) {
  if (a.seed != b.seed || a.protocol != b.protocol ||
      a.secondaries != b.secondaries || a.ops.size() != b.ops.size()) {
    return false;
  }
  for (size_t i = 0; i < a.ops.size(); ++i) {
    const Op& x = a.ops[i];
    const Op& y = b.ops[i];
    if (x.kind != y.kind || x.len != y.len || x.fault != y.fault ||
        x.at_us != y.at_us || x.duration_us != y.duration_us ||
        x.probability != y.probability || x.delay_us != y.delay_us ||
        x.site != y.site || x.after_hits != y.after_hits ||
        x.graceful != y.graceful) {
      return false;
    }
  }
  return true;
}

TEST(Schedule, GenerationIsDeterministic) {
  for (uint64_t seed : {1ull, 17ull, 987654321ull}) {
    Schedule a = GenerateSchedule(seed, 40);
    Schedule b = GenerateSchedule(seed, 40);
    EXPECT_TRUE(SameSchedule(a, b)) << "seed " << seed;
  }
}

TEST(Schedule, DistinctSeedsProduceDistinctSchedules) {
  Schedule a = GenerateSchedule(1, 40);
  Schedule b = GenerateSchedule(2, 40);
  EXPECT_FALSE(SameSchedule(a, b));
}

TEST(Schedule, GeneratedOpsStayNearTarget) {
  Schedule s = GenerateSchedule(5, 40);
  EXPECT_GE(s.ops.size(), 10u);
  EXPECT_LE(s.ops.size(), 60u);
  EXPECT_GT(s.TotalAppendBytes(), 0u);
  EXPECT_LE(s.secondaries, 2u);
}

TEST(Schedule, AtMostOneCrashPerSchedule) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Schedule s = GenerateSchedule(seed, 40);
    size_t crashes = 0;
    for (const Op& op : s.ops) {
      if (op.kind == Op::Kind::kCrash) ++crashes;
    }
    EXPECT_LE(crashes, 1u) << "seed " << seed;
    EXPECT_EQ(s.HasCrash(), crashes == 1) << "seed " << seed;
  }
}

TEST(Schedule, FailoverOnlyInThreeMemberClustersAndExclusiveWithCrash) {
  size_t with_failover = 0;
  for (uint64_t seed = 1; seed <= 80; ++seed) {
    Schedule s = GenerateSchedule(seed, 40);
    size_t failovers = 0;
    for (const Op& op : s.ops) {
      if (op.kind == Op::Kind::kFailover) ++failovers;
    }
    EXPECT_LE(failovers, 1u) << "seed " << seed;
    if (failovers > 0) {
      ++with_failover;
      // Failover needs a live majority after the primary dies, and never
      // rides with a crash clause (both kill the primary).
      EXPECT_EQ(s.secondaries, 2u) << "seed " << seed;
      EXPECT_FALSE(s.HasCrash()) << "seed " << seed;
    }
  }
  EXPECT_GT(with_failover, 0u) << "generator never emits failover";
}

TEST(Schedule, FailoverDirectiveRoundTrips) {
  Result<Schedule> parsed = ScheduleFromText(
      "seed 3\nprotocol chain\nsecondaries 2\nappend 128\nfailover\nfsync\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->ops.size(), 3u);
  EXPECT_EQ(parsed->ops[1].kind, Op::Kind::kFailover);
  EXPECT_TRUE(parsed->HasFailover());
  EXPECT_EQ(ToText(*parsed), ToText(*ScheduleFromText(ToText(*parsed))));
}

TEST(Schedule, TextRoundTripIsExact) {
  for (uint64_t seed : {1ull, 17ull, 23ull, 42ull}) {
    Schedule original = GenerateSchedule(seed, 40);
    Result<Schedule> parsed = ScheduleFromText(ToText(original));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_TRUE(SameSchedule(original, *parsed)) << "seed " << seed;
    // And the round-trip is a fixed point: re-serializing is identical.
    EXPECT_EQ(ToText(original), ToText(*parsed)) << "seed " << seed;
  }
}

TEST(Schedule, ParseRejectsUnknownDirectives) {
  EXPECT_FALSE(ScheduleFromText("seed 1\nfrobnicate 7\n").ok());
  EXPECT_FALSE(ScheduleFromText("seed 1\nfault not_a_kind at_us 0 "
                                "duration_us 1 probability 1 delay_us 0\n")
                   .ok());
  EXPECT_FALSE(ScheduleFromText("protocol carrier-pigeon\n").ok());
}

TEST(Schedule, ParseAcceptsHandWrittenTrace) {
  Result<Schedule> parsed = ScheduleFromText(
      "# comment\n"
      "seed 7\n"
      "protocol chain\n"
      "secondaries 2\n"
      "append 4096\n"
      "fsync\n"
      "read 128\n"
      "crash cmb.persist after_hits 2 graceful 0\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seed, 7u);
  EXPECT_EQ(parsed->protocol, core::ReplicationProtocol::kChain);
  EXPECT_EQ(parsed->secondaries, 2u);
  ASSERT_EQ(parsed->ops.size(), 4u);
  EXPECT_EQ(parsed->ops[3].kind, Op::Kind::kCrash);
  EXPECT_EQ(parsed->ops[3].site, "cmb.persist");
  EXPECT_EQ(parsed->ops[3].after_hits, 2u);
  EXPECT_FALSE(parsed->ops[3].graceful);
}

TEST(Schedule, PayloadBytesKeyedOnAbsoluteOffset) {
  // The byte at offset 1000 must not depend on how the appends before it
  // were sliced — that is what keeps shrunk schedules comparable.
  EXPECT_EQ(PayloadByte(7, 1000), PayloadByte(7, 1000));
  EXPECT_NE(PayloadByte(7, 1000), PayloadByte(8, 1000));
  int distinct = 0;
  for (uint64_t off = 0; off < 256; ++off) {
    if (PayloadByte(7, off) != PayloadByte(7, off + 1)) ++distinct;
  }
  EXPECT_GT(distinct, 200);  // not a constant or trivially periodic
}

TEST(Schedule, CompileFaultPlanCarriesClauses) {
  Result<Schedule> parsed = ScheduleFromText(
      "seed 3\n"
      "fault flash.program_fail at_us 100 duration_us 50 probability 0.5 "
      "delay_us 0\n"
      "crash destage.emit_page after_hits 3 graceful 1\n"
      "append 64\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  fault::FaultPlan plan = parsed->CompileFaultPlan("test");
  ASSERT_EQ(plan.faults.size(), 2u);
  EXPECT_EQ(plan.faults[0].kind, fault::FaultKind::kFlashProgramFail);
  EXPECT_EQ(plan.faults[0].probability, 0.5);
  EXPECT_EQ(plan.faults[1].kind, fault::FaultKind::kCrash);
  EXPECT_EQ(plan.faults[1].site, "destage.emit_page");
  EXPECT_EQ(plan.faults[1].after_hits, 3u);
  EXPECT_TRUE(plan.faults[1].graceful);
}

}  // namespace
}  // namespace xssd::check
