// End-to-end tests of the conformance harness: clean schedules conform,
// crash schedules recover, results are deterministic, and the planted
// ordering bug is both caught by the oracle and minimized by the
// shrinker — the same gates CI's check_campaign runs at larger scale.

#include "check/conformance.h"

#include <gtest/gtest.h>

#include <string>

#include "check/schedule.h"
#include "check/shrink.h"

namespace xssd::check {
namespace {

TEST(Conformance, CleanSeedsConform) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Schedule schedule = GenerateSchedule(seed, 30);
    CheckResult result = RunSchedule(schedule);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": "
                           << result.first_divergence;
    EXPECT_GT(result.appended, 0u) << "seed " << seed;
  }
}

TEST(Conformance, ResultsAreDeterministic) {
  Schedule schedule = GenerateSchedule(11, 30);
  CheckResult a = RunSchedule(schedule);
  CheckResult b = RunSchedule(schedule);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.ops_executed, b.ops_executed);
  EXPECT_EQ(a.appended, b.appended);
  EXPECT_EQ(a.crashed, b.crashed);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.recovered_bytes, b.recovered_bytes);
  EXPECT_EQ(a.first_divergence, b.first_divergence);
}

TEST(Conformance, GracefulCrashScheduleRecovers) {
  Result<Schedule> schedule = ScheduleFromText(
      "seed 7\n"
      "protocol eager\n"
      "secondaries 0\n"
      "append 4096\n"
      "crash cmb.persist after_hits 1 graceful 1\n"
      "append 4096\n"
      "fsync\n");
  ASSERT_TRUE(schedule.ok());
  CheckResult result = RunSchedule(*schedule);
  EXPECT_TRUE(result.ok) << result.first_divergence;
  EXPECT_TRUE(result.crashed);
  EXPECT_TRUE(result.graceful_crash);
  EXPECT_TRUE(result.recovered);
  EXPECT_EQ(result.fault_totals.crashes, 1u);
}

TEST(Conformance, HardCrashScheduleRecovers) {
  Result<Schedule> schedule = ScheduleFromText(
      "seed 9\n"
      "protocol eager\n"
      "secondaries 0\n"
      "append 8192\n"
      "append 8192\n"
      "crash destage.page_complete after_hits 1 graceful 0\n"
      "append 4096\n"
      "fsync\n");
  ASSERT_TRUE(schedule.ok());
  CheckResult result = RunSchedule(*schedule);
  EXPECT_TRUE(result.ok) << result.first_divergence;
  EXPECT_TRUE(result.crashed);
  EXPECT_FALSE(result.graceful_crash);
  EXPECT_TRUE(result.recovered);
}

TEST(Conformance, ReplicatedScheduleChecksSecondaries) {
  Result<Schedule> schedule = ScheduleFromText(
      "seed 13\n"
      "protocol eager\n"
      "secondaries 2\n"
      "append 4096\n"
      "append 2048\n"
      "fsync\n"
      "read 1024\n");
  ASSERT_TRUE(schedule.ok());
  CheckResult result = RunSchedule(*schedule);
  EXPECT_TRUE(result.ok) << result.first_divergence;
  EXPECT_EQ(result.appended, 6144u);
}

TEST(Conformance, FailoverScheduleConformsAndPromotesExactlyOnce) {
  Result<Schedule> schedule = ScheduleFromText(
      "seed 21\n"
      "protocol eager\n"
      "secondaries 2\n"
      "append 8192\n"
      "fsync\n"
      "failover\n"
      "append 4096\n"
      "fsync\n"
      "read 512\n");
  ASSERT_TRUE(schedule.ok());
  ASSERT_TRUE(schedule->HasFailover());
  CheckResult result = RunSchedule(*schedule);
  EXPECT_TRUE(result.ok) << result.first_divergence;
  EXPECT_TRUE(result.failed_over);
  EXPECT_EQ(result.promotions, 1u);
  EXPECT_FALSE(result.crashed);  // failover is not the crash path
}

TEST(Conformance, GeneratedFailoverSchedulesConform) {
  // Sweep seeds until a handful of generated schedules carrying a
  // failover op have run clean — the same mix the check_campaign sees.
  int ran = 0;
  for (uint64_t seed = 1; seed <= 60 && ran < 3; ++seed) {
    Schedule schedule = GenerateSchedule(seed, 30);
    if (!schedule.HasFailover()) continue;
    ++ran;
    CheckResult result = RunSchedule(schedule);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": "
                           << result.first_divergence;
    EXPECT_TRUE(result.failed_over) << "seed " << seed;
  }
  EXPECT_EQ(ran, 3) << "generator produced too few failover schedules";
}

TEST(Conformance, PlantedOrderingBugIsCaught) {
  CheckOptions options;
  options.plant_early_credit_bug = true;
  // The bug acknowledges bytes before persistence; it corrupts destaged
  // data once the staging backlog exceeds a page. Find it within a few
  // seeds, as the campaign does.
  bool caught = false;
  Schedule failing;
  for (uint64_t seed = 1; seed <= 5 && !caught; ++seed) {
    Schedule schedule = GenerateSchedule(seed, 40);
    CheckResult result = RunSchedule(schedule, options);
    if (!result.ok) {
      caught = true;
      failing = schedule;
    }
  }
  ASSERT_TRUE(caught) << "planted bug survived 5 seeds";

  ShrinkResult shrunk = ShrinkSchedule(failing, options);
  EXPECT_TRUE(shrunk.still_failing);
  EXPECT_LE(shrunk.schedule.ops.size(), 15u)
      << "counterexample did not shrink: " << ToText(shrunk.schedule);
  EXPECT_FALSE(shrunk.divergence.empty());
  // The minimized schedule must still fail for the same reason family.
  CheckResult replay = RunSchedule(shrunk.schedule, options);
  EXPECT_FALSE(replay.ok);
}

TEST(Conformance, ShrinkPreservesFailureAndIsBounded) {
  CheckOptions options;
  options.plant_early_credit_bug = true;
  Schedule schedule = GenerateSchedule(1, 40);
  CheckResult result = RunSchedule(schedule, options);
  ASSERT_FALSE(result.ok);
  ShrinkResult shrunk = ShrinkSchedule(schedule, options, /*max_runs=*/100);
  EXPECT_LE(shrunk.runs, 101u);  // budget + final confirmation
  EXPECT_TRUE(shrunk.still_failing);
  EXPECT_LT(shrunk.schedule.ops.size(), schedule.ops.size());
}

}  // namespace
}  // namespace xssd::check
