#include "flash/geometry.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace xssd::flash {
namespace {

TEST(Geometry, DefaultCounts) {
  Geometry g;
  EXPECT_EQ(g.dies(), 64u);
  EXPECT_EQ(g.blocks(), 64u * 64);
  EXPECT_EQ(g.pages(), g.blocks() * 256);
  EXPECT_EQ(g.capacity_bytes(), g.pages() * 16384);
}

TEST(Geometry, PageIndexRoundTripCorners) {
  Geometry g;
  Address first{};
  EXPECT_EQ(PageIndex(g, first), 0u);
  Address last{g.channels - 1, g.dies_per_channel - 1, g.planes_per_die - 1,
               g.blocks_per_plane - 1, g.pages_per_block - 1};
  EXPECT_EQ(PageIndex(g, last), g.pages() - 1);
  EXPECT_EQ(AddressOfPage(g, g.pages() - 1), last);
}

TEST(Geometry, BlockIndexRoundTripCorners) {
  Geometry g;
  Address last{g.channels - 1, g.dies_per_channel - 1, g.planes_per_die - 1,
               g.blocks_per_plane - 1, 0};
  EXPECT_EQ(BlockIndex(g, last), g.blocks() - 1);
  EXPECT_EQ(AddressOfBlock(g, g.blocks() - 1), last);
}

TEST(Geometry, ContainsChecksEveryDimension) {
  Geometry g;
  EXPECT_TRUE(Contains(g, Address{0, 0, 0, 0, 0}));
  EXPECT_FALSE(Contains(g, Address{g.channels, 0, 0, 0, 0}));
  EXPECT_FALSE(Contains(g, Address{0, g.dies_per_channel, 0, 0, 0}));
  EXPECT_FALSE(Contains(g, Address{0, 0, g.planes_per_die, 0, 0}));
  EXPECT_FALSE(Contains(g, Address{0, 0, 0, g.blocks_per_plane, 0}));
  EXPECT_FALSE(Contains(g, Address{0, 0, 0, 0, g.pages_per_block}));
}

TEST(Geometry, ToStringIsReadable) {
  Address a{1, 2, 0, 3, 4};
  EXPECT_EQ(a.ToString(), "ch1/die2/pl0/blk3/pg4");
}

// Property: PageIndex and AddressOfPage are inverse bijections for random
// addresses under random geometries.
class GeometryRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeometryRoundTrip, RandomAddressesRoundTrip) {
  sim::Rng rng(GetParam());
  Geometry g;
  g.channels = 1 + static_cast<uint32_t>(rng.Uniform(8));
  g.dies_per_channel = 1 + static_cast<uint32_t>(rng.Uniform(8));
  g.planes_per_die = 1 + static_cast<uint32_t>(rng.Uniform(4));
  g.blocks_per_plane = 1 + static_cast<uint32_t>(rng.Uniform(64));
  g.pages_per_block = 1 + static_cast<uint32_t>(rng.Uniform(256));
  for (int i = 0; i < 200; ++i) {
    uint64_t page = rng.Uniform(g.pages());
    Address a = AddressOfPage(g, page);
    EXPECT_TRUE(Contains(g, a));
    EXPECT_EQ(PageIndex(g, a), page);
  }
  for (int i = 0; i < 200; ++i) {
    uint64_t block = rng.Uniform(g.blocks());
    Address a = AddressOfBlock(g, block);
    EXPECT_EQ(BlockIndex(g, a), block);
    // Page index of the block's first page == block * pages_per_block.
    EXPECT_EQ(PageIndex(g, a), block * g.pages_per_block);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometryRoundTrip,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace xssd::flash
