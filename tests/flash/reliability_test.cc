// Media-reliability model tests: retention-dwell and read-disturb BER
// growth, the PredictedBer scrub signal, the read-retry ladder, the
// CorruptOob test hook, and the flash.retention / flash.disturb fault
// kinds riding the same decay paths.

#include <gtest/gtest.h>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "flash/array.h"

namespace xssd::flash {
namespace {

Geometry SmallGeometry() {
  Geometry g;
  g.channels = 2;
  g.dies_per_channel = 2;
  g.blocks_per_plane = 8;
  g.pages_per_block = 16;
  g.page_bytes = 4096;
  return g;
}

class ReliabilityTest : public ::testing::Test {
 protected:
  explicit ReliabilityTest(Reliability reliability = {})
      : array_(&sim_, SmallGeometry(), Timing{}, reliability, 7) {}

  std::vector<uint8_t> Page(uint8_t fill) {
    return std::vector<uint8_t>(array_.geometry().page_bytes, fill);
  }

  Status ProgramSync(const Address& addr, uint8_t fill,
                     std::vector<uint8_t> oob = {}) {
    bool fired = false;
    Status result = Status::Internal("no callback");
    array_.Program(addr, Page(fill), std::move(oob), [&](Status status) {
      result = status;
      fired = true;
    });
    sim_.RunWhile([&]() { return fired; });
    return result;
  }

  Status ReadSync(const Address& addr) {
    bool fired = false;
    Status status = Status::Internal("no callback");
    array_.Read(addr, [&](Status s, std::vector<uint8_t>) {
      status = s;
      fired = true;
    });
    sim_.RunWhile([&]() { return fired; });
    return status;
  }

  Status EraseSync(const Address& addr) {
    bool fired = false;
    Status status = Status::Internal("no callback");
    array_.Erase(addr, [&](Status s) {
      status = s;
      fired = true;
    });
    sim_.RunWhile([&]() { return fired; });
    return status;
  }

  sim::Simulator sim_;
  Array array_;
};

// -- Decay model ------------------------------------------------------------

class DecayTest : public ReliabilityTest {
 protected:
  static Reliability DecayModel() {
    Reliability r;
    r.raw_bit_error_rate = 1e-6;
    r.ber_per_retention_sec = 1e-5;
    r.ber_per_read_disturb = 1e-7;
    r.ecc_correctable_bits = 24;
    return r;
  }
  DecayTest() : ReliabilityTest(DecayModel()) {}
};

TEST_F(DecayTest, PredictedBerGrowsWithRetentionDwell) {
  Address addr{0, 0, 0, 0, 0};
  ASSERT_TRUE(ProgramSync(addr, 0x11).ok());
  double fresh = array_.PredictedBer(addr);
  sim_.RunFor(sim::Sec(2));
  double aged = array_.PredictedBer(addr);
  EXPECT_GT(aged, fresh);
  // Dwell is charged linearly: ~2 s at 1e-5/s on top of the fresh value.
  EXPECT_NEAR(aged - fresh, 2e-5, 1e-6);
}

TEST_F(DecayTest, DwellEpochStartsAtFirstProgramSinceErase) {
  Address first{0, 0, 0, 0, 0};
  ASSERT_TRUE(ProgramSync(first, 0x22).ok());
  sim::SimTime epoch = array_.ProgrammedAt(first);
  sim_.RunFor(sim::Sec(1));
  // A later program in the same block does not restart the block's clock.
  Address second{0, 0, 0, 0, 1};
  ASSERT_TRUE(ProgramSync(second, 0x33).ok());
  EXPECT_EQ(array_.ProgrammedAt(second), epoch);
}

TEST_F(DecayTest, PredictedBerGrowsWithReadDisturbAndEraseResetsBoth) {
  Address addr{0, 0, 0, 0, 0};
  ASSERT_TRUE(ProgramSync(addr, 0x44).ok());
  double fresh = array_.PredictedBer(addr);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ReadSync(addr).ok());
  }
  EXPECT_EQ(array_.ReadsSinceErase(addr), 50u);
  EXPECT_GT(array_.PredictedBer(addr), fresh);

  ASSERT_TRUE(EraseSync(addr).ok());
  EXPECT_EQ(array_.ReadsSinceErase(addr), 0u);
  // Erase resets dwell and disturb; only the (here zero-weight) wear term
  // could keep the prediction above the raw floor.
  EXPECT_DOUBLE_EQ(array_.PredictedBer(addr),
                   array_.reliability().raw_bit_error_rate);
}

// -- Read-retry ladder ------------------------------------------------------

class RetryRescueTest : public ReliabilityTest {
 protected:
  static Reliability Marginal() {
    Reliability r;
    // ~39 mean bit errors per 4 KiB page against a 24-bit budget: the
    // first sense fails, the first shifted re-sense (x0.5) lands at ~20
    // and corrects.
    r.raw_bit_error_rate = 1.2e-3;
    r.ecc_correctable_bits = 24;
    r.read_retry_levels = 4;
    r.retry_ber_factor = 0.5;
    return r;
  }
  RetryRescueTest() : ReliabilityTest(Marginal()) {}
};

TEST_F(RetryRescueTest, LadderRescuesMarginalPage) {
  Address addr{0, 0, 0, 0, 0};
  ASSERT_TRUE(ProgramSync(addr, 0x55).ok());
  EXPECT_TRUE(ReadSync(addr).ok());
  EXPECT_GE(array_.stats().read_retries, 1u);
  EXPECT_EQ(array_.stats().retry_exhausted, 0u);
  EXPECT_EQ(array_.stats().uncorrectable_reads, 0u);
  EXPECT_GT(array_.stats().corrected_bit_errors, 0u);
}

TEST_F(RetryRescueTest, RetriesChargeExtraSenseTime) {
  Address a{0, 0, 0, 0, 0};
  ASSERT_TRUE(ProgramSync(a, 0x66).ok());
  sim::SimTime start = sim_.Now();
  ASSERT_TRUE(ReadSync(a).ok());
  uint64_t retries = array_.stats().read_retries;
  ASSERT_GE(retries, 1u);
  // Each ladder level re-senses the cell array: >= one extra tR per retry.
  EXPECT_GE(sim_.Now() - start,
            array_.timing().read_latency * (1 + retries));
}

class RetryExhaustTest : public ReliabilityTest {
 protected:
  static Reliability Severe() {
    Reliability r;
    // ~327 mean errors; even the deepest re-sense (x0.25) stays ~80 over
    // a 24-bit budget, so the ladder must exhaust.
    r.raw_bit_error_rate = 1e-2;
    r.ecc_correctable_bits = 24;
    r.read_retry_levels = 2;
    r.retry_ber_factor = 0.5;
    return r;
  }
  RetryExhaustTest() : ReliabilityTest(Severe()) {}
};

TEST_F(RetryExhaustTest, LadderExhaustsOnSevereDecay) {
  Address addr{0, 0, 0, 0, 0};
  ASSERT_TRUE(ProgramSync(addr, 0x77).ok());
  Status status = ReadSync(addr);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  EXPECT_EQ(array_.stats().read_retries, 2u);  // both levels spent
  EXPECT_EQ(array_.stats().retry_exhausted, 1u);
  EXPECT_EQ(array_.stats().uncorrectable_reads, 1u);
}

// -- OOB corruption hook ----------------------------------------------------

TEST_F(ReliabilityTest, CorruptOobFlipsStoredByteAndSkipsErasedPages) {
  Address addr{0, 0, 0, 0, 0};
  std::vector<uint8_t> oob(16, 0xA0);
  ASSERT_TRUE(ProgramSync(addr, 0x10, oob).ok());
  ASSERT_NE(array_.PeekOob(addr), nullptr);
  EXPECT_TRUE(array_.CorruptOob(addr, 3, 0x40));
  EXPECT_EQ((*array_.PeekOob(addr))[3], 0xA0 ^ 0x40);
  // Index wraps modulo the record length.
  EXPECT_TRUE(array_.CorruptOob(addr, 16, 0x01));
  EXPECT_EQ((*array_.PeekOob(addr))[0], 0xA0 ^ 0x01);
  // Erased page: nothing to corrupt.
  EXPECT_FALSE(array_.CorruptOob(Address{0, 0, 0, 1, 0}, 0, 0xFF));
}

// -- Injected decay (flash.retention / flash.disturb fault kinds) -----------

TEST(ReliabilityFaults, RetentionFaultInjectsDwell) {
  Reliability r;
  r.ber_per_retention_sec = 1e-3;
  r.ecc_correctable_bits = 24;
  r.read_retry_levels = 0;
  sim::Simulator sim;
  Array array(&sim, SmallGeometry(), Timing{}, r, 7);

  Address addr{0, 0, 0, 0, 0};
  Status programmed = Status::Internal("pending");
  array.Program(addr, std::vector<uint8_t>(4096, 0x42),
                [&](Status s) { programmed = s; });
  sim.Run();
  ASSERT_TRUE(programmed.ok());

  auto read = [&]() {
    bool fired = false;
    Status status = Status::Internal("pending");
    array.Read(addr, [&](Status s, std::vector<uint8_t>) {
      status = s;
      fired = true;
    });
    sim.RunWhile([&]() { return fired; });
    return status;
  };
  // Organic dwell is microseconds — reads are clean.
  EXPECT_TRUE(read().ok());

  // 100 s of injected dwell pushes the effective BER to ~0.1: far past
  // the budget, indistinguishable from a block that sat cold that long.
  fault::FaultPlan plan =
      fault::FaultPlanBuilder("retention")
          .Window(fault::FaultKind::kFlashRetention, sim.Now(),
                  fault::FaultSpec::kForever, 1.0, sim::Sec(100))
          .Build();
  fault::FaultInjector injector(&sim, plan, 7);
  array.set_fault_injector(&injector);
  EXPECT_TRUE(read().IsCorruption());
  // The prediction stays pure: no fault terms leak into the scrub signal.
  EXPECT_LT(array.PredictedBer(addr), 1e-4);
}

TEST(ReliabilityFaults, DisturbFaultInjectsReads) {
  Reliability r;
  r.ber_per_read_disturb = 1e-4;
  r.ecc_correctable_bits = 24;
  r.read_retry_levels = 0;
  sim::Simulator sim;
  Array array(&sim, SmallGeometry(), Timing{}, r, 7);

  Address addr{0, 0, 0, 0, 0};
  Status programmed = Status::Internal("pending");
  array.Program(addr, std::vector<uint8_t>(4096, 0x43),
                [&](Status s) { programmed = s; });
  sim.Run();
  ASSERT_TRUE(programmed.ok());

  auto read = [&]() {
    bool fired = false;
    Status status = Status::Internal("pending");
    array.Read(addr, [&](Status s, std::vector<uint8_t>) {
      status = s;
      fired = true;
    });
    sim.RunWhile([&]() { return fired; });
    return status;
  };
  EXPECT_TRUE(read().ok());

  fault::FaultPlan plan =
      fault::FaultPlanBuilder("disturb")
          .Window(fault::FaultKind::kFlashDisturb, sim.Now(),
                  fault::FaultSpec::kForever, 1.0, 0, /*magnitude=*/1000.0)
          .Build();
  fault::FaultInjector injector(&sim, plan, 7);
  array.set_fault_injector(&injector);
  EXPECT_TRUE(read().IsCorruption());
}

}  // namespace
}  // namespace xssd::flash
