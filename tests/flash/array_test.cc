#include "flash/array.h"

#include <gtest/gtest.h>

namespace xssd::flash {
namespace {

Geometry SmallGeometry() {
  Geometry g;
  g.channels = 2;
  g.dies_per_channel = 2;
  g.blocks_per_plane = 8;
  g.pages_per_block = 16;
  g.page_bytes = 4096;
  return g;
}

class ArrayTest : public ::testing::Test {
 protected:
  ArrayTest()
      : array_(&sim_, SmallGeometry(), Timing{}, Reliability{}, 1) {}

  std::vector<uint8_t> Page(uint8_t fill) {
    return std::vector<uint8_t>(array_.geometry().page_bytes, fill);
  }

  Status ProgramSync(const Address& addr, std::vector<uint8_t> data) {
    Status result = Status::Internal("no callback");
    array_.Program(addr, std::move(data),
                   [&](Status status) { result = status; });
    sim_.Run();
    return result;
  }

  Result<std::vector<uint8_t>> ReadSync(const Address& addr) {
    Status status = Status::Internal("no callback");
    std::vector<uint8_t> data;
    array_.Read(addr, [&](Status s, std::vector<uint8_t> d) {
      status = s;
      data = std::move(d);
    });
    sim_.Run();
    if (!status.ok()) return status;
    return data;
  }

  sim::Simulator sim_;
  flash::Array array_;
};

TEST_F(ArrayTest, ProgramThenReadReturnsData) {
  Address addr{0, 0, 0, 0, 0};
  ASSERT_TRUE(ProgramSync(addr, Page(0x42)).ok());
  auto data = ReadSync(addr);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)[0], 0x42);
  EXPECT_EQ((*data)[4095], 0x42);
}

TEST_F(ArrayTest, ErasedPageReadsAllOnes) {
  auto data = ReadSync(Address{1, 1, 0, 3, 7});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ((*data)[0], 0xFF);
}

TEST_F(ArrayTest, OutOfOrderProgramRejected) {
  Address addr{0, 0, 0, 0, 2};  // page 2 before 0 and 1
  Status status = ProgramSync(addr, Page(1));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ArrayTest, ProgramOverwriteWithoutEraseRejected) {
  Address addr{0, 0, 0, 0, 0};
  ASSERT_TRUE(ProgramSync(addr, Page(1)).ok());
  // Programming page 0 again without erase violates next_page order.
  EXPECT_FALSE(ProgramSync(addr, Page(2)).ok());
}

TEST_F(ArrayTest, EraseResetsBlockForReprogram) {
  Address addr{0, 0, 0, 0, 0};
  ASSERT_TRUE(ProgramSync(addr, Page(1)).ok());
  Status erased = Status::Internal("x");
  array_.Erase(addr, [&](Status s) { erased = s; });
  sim_.Run();
  ASSERT_TRUE(erased.ok());
  EXPECT_EQ(array_.EraseCount(addr), 1u);
  auto data = ReadSync(addr);
  EXPECT_EQ((*data)[0], 0xFF);  // erased again
  EXPECT_TRUE(ProgramSync(addr, Page(9)).ok());
}

TEST_F(ArrayTest, ProgramTimingIncludesBusAndDieLatency) {
  Address addr{0, 0, 0, 0, 0};
  sim::SimTime done = 0;
  array_.Program(addr, Page(1), [&](Status) { done = sim_.Now(); });
  sim_.Run();
  const Timing timing;
  // >= channel transfer (4 KiB / 250 MB/s ~ 16.4 us) + tPROG.
  EXPECT_GE(done, timing.program_latency + sim::Us(16));
}

TEST_F(ArrayTest, SameDieOperationsSerialize) {
  Address a{0, 0, 0, 0, 0};
  Address b{0, 0, 0, 1, 0};  // same die, other block
  sim::SimTime done_a = 0, done_b = 0;
  array_.Program(a, Page(1), [&](Status) { done_a = sim_.Now(); });
  array_.Program(b, Page(2), [&](Status) { done_b = sim_.Now(); });
  sim_.Run();
  const Timing timing;
  EXPECT_GE(done_b, done_a + timing.program_latency);
}

TEST_F(ArrayTest, DifferentChannelsOverlap) {
  Address a{0, 0, 0, 0, 0};
  Address b{1, 0, 0, 0, 0};
  sim::SimTime done_a = 0, done_b = 0;
  array_.Program(a, Page(1), [&](Status) { done_a = sim_.Now(); });
  array_.Program(b, Page(2), [&](Status) { done_b = sim_.Now(); });
  sim_.Run();
  const Timing timing;
  // Both finish within ~one program window of each other.
  EXPECT_LT(done_b > done_a ? done_b - done_a : done_a - done_b,
            timing.program_latency / 2);
}

TEST_F(ArrayTest, DieBusyProbes) {
  Address addr{0, 1, 0, 0, 0};
  EXPECT_TRUE(array_.DieIdle(0, 1));
  array_.Program(addr, Page(1), [](Status) {});
  EXPECT_FALSE(array_.DieIdle(0, 1));
  EXPECT_GT(array_.DieBusyUntil(0, 1), sim_.Now());
  sim_.Run();
  EXPECT_TRUE(array_.DieIdle(0, 1));
}

TEST_F(ArrayTest, ShortDataIsZeroPadded) {
  Address addr{0, 0, 0, 0, 0};
  ASSERT_TRUE(ProgramSync(addr, std::vector<uint8_t>{1, 2, 3}).ok());
  auto data = ReadSync(addr);
  EXPECT_EQ((*data)[0], 1);
  EXPECT_EQ((*data)[3], 0);
}

TEST_F(ArrayTest, StatsCountOperations) {
  Address addr{0, 0, 0, 0, 0};
  ASSERT_TRUE(ProgramSync(addr, Page(1)).ok());
  ReadSync(addr);
  EXPECT_EQ(array_.stats().programs, 1u);
  EXPECT_EQ(array_.stats().reads, 1u);
}

TEST_F(ArrayTest, PeekPage) {
  Address addr{0, 0, 0, 0, 0};
  EXPECT_EQ(array_.PeekPage(addr), nullptr);
  ASSERT_TRUE(ProgramSync(addr, Page(0x33)).ok());
  const std::vector<uint8_t>* page = array_.PeekPage(addr);
  ASSERT_NE(page, nullptr);
  EXPECT_EQ((*page)[0], 0x33);
}

TEST_F(ArrayTest, MaxProgramBandwidthTakesTheTighterBound) {
  // Small geometry: 4 dies x 4 KiB / 250 us ≈ 65.5 MB/s die-bound, below
  // the 500 MB/s bus bound.
  EXPECT_NEAR(array_.MaxProgramBandwidth(), 65.5e6, 1e6);
  // Default (paper) geometry is bus-bound at 2 GB/s.
  sim::Simulator sim;
  Array big(&sim, Geometry{}, Timing{}, Reliability{}, 1);
  EXPECT_NEAR(big.MaxProgramBandwidth(), 2e9, 1e7);
}

TEST(ArrayReliability, FactoryBadBlocksRejectPrograms) {
  sim::Simulator sim;
  Reliability reliability;
  reliability.factory_bad_block_rate = 1.0;  // every block bad
  Array array(&sim, SmallGeometry(), Timing{}, reliability, 7);
  Status status = Status::OK();
  array.Program(Address{0, 0, 0, 0, 0}, {1, 2, 3},
                [&](Status s) { status = s; });
  sim.Run();
  EXPECT_TRUE(status.IsIoError());
  EXPECT_TRUE(array.IsBadBlock(Address{0, 0, 0, 0, 0}));
}

TEST(ArrayReliability, ProgramFailureGrowsBadBlock) {
  sim::Simulator sim;
  Reliability reliability;
  reliability.program_fail_rate = 1.0;
  Array array(&sim, SmallGeometry(), Timing{}, reliability, 7);
  Status status = Status::OK();
  Address addr{0, 0, 0, 0, 0};
  array.Program(addr, {1}, [&](Status s) { status = s; });
  sim.Run();
  EXPECT_TRUE(status.IsIoError());
  EXPECT_TRUE(array.IsBadBlock(addr));
  EXPECT_EQ(array.stats().program_failures, 1u);
}

TEST(ArrayReliability, UncorrectableErrorsSurfaceAsCorruption) {
  sim::Simulator sim;
  Reliability reliability;
  reliability.raw_bit_error_rate = 0.05;   // ~1600 errors/page
  reliability.ecc_correctable_bits = 10;
  Array array(&sim, SmallGeometry(), Timing{}, reliability, 7);
  Address addr{0, 0, 0, 0, 0};
  array.Program(addr, std::vector<uint8_t>(4096, 0xAA), [](Status) {});
  sim.Run();
  Status status = Status::OK();
  array.Read(addr, [&](Status s, std::vector<uint8_t>) { status = s; });
  sim.Run();
  EXPECT_TRUE(status.IsCorruption());
  EXPECT_GE(array.stats().uncorrectable_reads, 1u);
}

TEST(ArrayReliability, CorrectableErrorsAreTransparent) {
  sim::Simulator sim;
  Reliability reliability;
  reliability.raw_bit_error_rate = 1e-6;  // ~0.03 errors/page
  reliability.ecc_correctable_bits = 72;
  Array array(&sim, SmallGeometry(), Timing{}, reliability, 7);
  Address addr{0, 0, 0, 0, 0};
  array.Program(addr, std::vector<uint8_t>(4096, 0xAA), [](Status) {});
  sim.Run();
  for (int i = 0; i < 50; ++i) {
    Status status = Status::Internal("x");
    std::vector<uint8_t> data;
    array.Read(addr, [&](Status s, std::vector<uint8_t> d) {
      status = s;
      data = std::move(d);
    });
    sim.Run();
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(data[100], 0xAA);
  }
}

}  // namespace
}  // namespace xssd::flash
