// FaultPlan JSON schema: strict parsing, stable kind names, hard errors on
// anything a typo could silently disable.

#include <gtest/gtest.h>

#include "fault/fault_plan.h"

namespace xssd::fault {
namespace {

TEST(FaultPlanTest, ParsesFullSchema) {
  Result<FaultPlan> plan = ParseFaultPlan(R"({
    "name": "ntb-flap",
    "faults": [
      {"kind": "ntb.link_down", "at_us": 200, "duration_us": 400},
      {"kind": "flash.program_fail", "probability": 0.25},
      {"kind": "pcie.store_delay", "delay_us": 3.5},
      {"kind": "crash", "site": "destage.emit_page", "after_hits": 3,
       "graceful": false}
    ]
  })");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->name, "ntb-flap");
  ASSERT_EQ(plan->faults.size(), 4u);

  const FaultSpec& flap = plan->faults[0];
  EXPECT_EQ(flap.kind, FaultKind::kNtbLinkDown);
  EXPECT_EQ(flap.at, sim::Us(200));
  EXPECT_EQ(flap.duration, sim::Us(400));
  EXPECT_EQ(flap.end(), sim::Us(600));
  EXPECT_EQ(flap.probability, 1.0);

  const FaultSpec& prog = plan->faults[1];
  EXPECT_EQ(prog.kind, FaultKind::kFlashProgramFail);
  EXPECT_EQ(prog.at, 0u);
  EXPECT_EQ(prog.duration, FaultSpec::kForever);
  EXPECT_EQ(prog.end(), FaultSpec::kForever);
  EXPECT_DOUBLE_EQ(prog.probability, 0.25);

  EXPECT_EQ(plan->faults[2].delay, sim::UsF(3.5));

  const FaultSpec& crash = plan->faults[3];
  EXPECT_EQ(crash.kind, FaultKind::kCrash);
  EXPECT_EQ(crash.site, "destage.emit_page");
  EXPECT_EQ(crash.after_hits, 3u);
  EXPECT_FALSE(crash.graceful);
}

TEST(FaultPlanTest, KindNamesRoundTrip) {
  for (FaultKind kind :
       {FaultKind::kFlashProgramFail, FaultKind::kFlashEraseFail,
        FaultKind::kFlashReadUncorrectable, FaultKind::kNtbLinkDown,
        FaultKind::kNtbLinkStall, FaultKind::kPcieStoreDelay,
        FaultKind::kPcieStoreTruncate, FaultKind::kNvmeTimeout,
        FaultKind::kCrash}) {
    Result<FaultKind> back = FaultKindFromName(FaultKindName(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(FaultKindFromName("flash.programfail").ok());
}

TEST(FaultPlanTest, UnknownKindIsError) {
  Result<FaultPlan> plan =
      ParseFaultPlan(R"({"faults": [{"kind": "ntb.linkdown"}]})");
  EXPECT_FALSE(plan.ok());
}

TEST(FaultPlanTest, UnknownFieldIsError) {
  Result<FaultPlan> plan = ParseFaultPlan(
      R"({"faults": [{"kind": "crash", "site": "x", "at_ms": 5}]})");
  EXPECT_FALSE(plan.ok());
}

TEST(FaultPlanTest, CrashRequiresSite) {
  Result<FaultPlan> plan = ParseFaultPlan(R"({"faults": [{"kind": "crash"}]})");
  EXPECT_FALSE(plan.ok());
}

TEST(FaultPlanTest, ProbabilityMustBeInRange) {
  EXPECT_FALSE(ParseFaultPlan(R"({"faults": [{"kind": "nvme.timeout",
                                              "probability": 1.5}]})")
                   .ok());
  EXPECT_FALSE(ParseFaultPlan(R"({"faults": [{"kind": "nvme.timeout",
                                              "probability": -0.1}]})")
                   .ok());
}

TEST(FaultPlanTest, MalformedJsonIsError) {
  EXPECT_FALSE(ParseFaultPlan("{").ok());
  EXPECT_FALSE(ParseFaultPlan(R"({"faults": [{"kind": "crash"}]} trailing)").ok());
  EXPECT_FALSE(ParseFaultPlan(R"({"faults": "not-a-list"})").ok());
}

TEST(FaultPlanTest, EmptyPlanIsValid) {
  Result<FaultPlan> plan = ParseFaultPlan(R"({"name": "quiet"})");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
}

TEST(FaultPlanTest, MissingFileIsError) {
  EXPECT_FALSE(LoadFaultPlan("/nonexistent/plan.json").ok());
}

}  // namespace
}  // namespace xssd::fault
