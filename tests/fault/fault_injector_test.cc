// FaultInjector semantics: window gating, seeded determinism, crash-once,
// site matching, and the fault.* metric registration.

#include <gtest/gtest.h>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace xssd::fault {
namespace {

FaultPlan PlanOf(std::vector<FaultSpec> faults) {
  FaultPlan plan;
  plan.name = "test";
  plan.faults = std::move(faults);
  return plan;
}

TEST(FaultInjectorTest, WindowGatesInjection) {
  sim::Simulator sim;
  FaultSpec spec;
  spec.kind = FaultKind::kFlashProgramFail;
  spec.at = sim::Us(100);
  spec.duration = sim::Us(50);
  FaultInjector injector(&sim, PlanOf({spec}), 1);

  EXPECT_FALSE(injector.InjectFlashProgramFail());  // before the window
  sim.RunFor(sim::Us(100));
  EXPECT_TRUE(injector.InjectFlashProgramFail());   // at window start
  sim.RunFor(sim::Us(49));
  EXPECT_TRUE(injector.InjectFlashProgramFail());   // last covered instant
  sim.RunFor(sim::Us(1));
  EXPECT_FALSE(injector.InjectFlashProgramFail());  // window end is exclusive
  EXPECT_EQ(injector.totals().flash_program_fails, 2u);
}

TEST(FaultInjectorTest, ProbabilisticDrawsAreSeedDeterministic) {
  FaultSpec spec;
  spec.kind = FaultKind::kNvmeTimeout;
  spec.probability = 0.5;

  auto draw_pattern = [&](uint64_t seed) {
    sim::Simulator sim;
    FaultInjector injector(&sim, PlanOf({spec}), seed);
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) {
      pattern.push_back(injector.InjectNvmeTimeout().timeout);
    }
    return pattern;
  };

  EXPECT_EQ(draw_pattern(7), draw_pattern(7));
  EXPECT_NE(draw_pattern(7), draw_pattern(8));
}

TEST(FaultInjectorTest, NtbDropTakesPrecedenceOverStall) {
  sim::Simulator sim;
  FaultSpec down;
  down.kind = FaultKind::kNtbLinkDown;
  FaultSpec stall;
  stall.kind = FaultKind::kNtbLinkStall;
  stall.delay = sim::Us(3);
  FaultInjector injector(&sim, PlanOf({stall, down}), 1);

  FaultInjector::NtbDecision decision = injector.NtbForwardDecision();
  EXPECT_EQ(decision.action, FaultInjector::LinkAction::kDrop);
  EXPECT_EQ(injector.totals().ntb_dropped, 1u);
  EXPECT_EQ(injector.totals().ntb_stalled, 0u);
}

TEST(FaultInjectorTest, StallCarriesConfiguredDelay) {
  sim::Simulator sim;
  FaultSpec stall;
  stall.kind = FaultKind::kNtbLinkStall;
  stall.delay = sim::Us(7);
  FaultInjector injector(&sim, PlanOf({stall}), 1);

  FaultInjector::NtbDecision decision = injector.NtbForwardDecision();
  EXPECT_EQ(decision.action, FaultInjector::LinkAction::kStall);
  EXPECT_EQ(decision.delay, sim::Us(7));
}

TEST(FaultInjectorTest, TruncationKeepsAtLeastOneByteAndLosesAtLeastOne) {
  sim::Simulator sim;
  FaultSpec trunc;
  trunc.kind = FaultKind::kPcieStoreTruncate;
  FaultInjector injector(&sim, PlanOf({trunc}), 3);
  for (int i = 0; i < 100; ++i) {
    uint64_t landed = injector.InjectPcieTruncation(64);
    EXPECT_GE(landed, 1u);
    EXPECT_LT(landed, 64u);
  }
  EXPECT_EQ(injector.totals().pcie_truncated, 100u);
}

TEST(FaultInjectorTest, NoTruncationClausePassesFullLength) {
  sim::Simulator sim;
  FaultInjector injector(&sim, PlanOf({}), 3);
  EXPECT_EQ(injector.InjectPcieTruncation(64), 64u);
  EXPECT_EQ(injector.InjectPcieStoreDelay(), 0u);
  EXPECT_FALSE(injector.InjectNvmeTimeout().timeout);
}

TEST(FaultInjectorTest, CrashSiteMatchesExactOrDeviceTail) {
  auto crashes_at = [](const std::string& spec_site,
                       const std::string& announced) {
    sim::Simulator sim;
    FaultSpec crash;
    crash.kind = FaultKind::kCrash;
    crash.site = spec_site;
    FaultInjector injector(&sim, PlanOf({crash}), 1);
    return injector.CrashPoint(announced);
  };

  EXPECT_TRUE(crashes_at("destage.emit_page", "destage.emit_page"));
  EXPECT_TRUE(crashes_at("destage.emit_page", "pri/destage.emit_page"));
  EXPECT_TRUE(crashes_at("pri/destage.emit_page", "pri/destage.emit_page"));
  EXPECT_FALSE(crashes_at("pri/destage.emit_page", "sec/destage.emit_page"));
  EXPECT_FALSE(crashes_at("destage.emit_page", "xdestage.emit_page"));
  EXPECT_FALSE(crashes_at("destage.emit_page", "destage.page_complete"));
}

TEST(FaultInjectorTest, CrashFiresOnceAfterNHitsThenDisablesEverything) {
  sim::Simulator sim;
  FaultSpec crash;
  crash.kind = FaultKind::kCrash;
  crash.site = "cmb.persist";
  crash.after_hits = 3;
  crash.graceful = false;
  FaultSpec prog;
  prog.kind = FaultKind::kFlashProgramFail;
  FaultInjector injector(&sim, PlanOf({crash, prog}), 1);

  int handler_calls = 0;
  injector.SetCrashHandler([&](const FaultSpec& spec) {
    ++handler_calls;
    EXPECT_FALSE(spec.graceful);
  });

  EXPECT_TRUE(injector.InjectFlashProgramFail());  // alive before the crash
  EXPECT_FALSE(injector.CrashPoint("dev/cmb.persist"));  // hit 1
  EXPECT_FALSE(injector.CrashPoint("dev/cmb.persist"));  // hit 2
  EXPECT_TRUE(injector.CrashPoint("dev/cmb.persist"));   // hit 3 fires
  EXPECT_TRUE(injector.crashed());
  EXPECT_EQ(handler_calls, 1);

  // Post-crash, every hook reports "no fault" so recovery runs clean.
  EXPECT_FALSE(injector.CrashPoint("dev/cmb.persist"));
  EXPECT_FALSE(injector.InjectFlashProgramFail());
  EXPECT_EQ(injector.NtbForwardDecision().action,
            FaultInjector::LinkAction::kForward);
  EXPECT_EQ(injector.totals().crashes, 1u);
}

TEST(FaultInjectorTest, MetricsMirrorTotals) {
  sim::Simulator sim;
  FaultSpec prog;
  prog.kind = FaultKind::kFlashProgramFail;
  FaultSpec timeout;
  timeout.kind = FaultKind::kNvmeTimeout;
  FaultInjector injector(&sim, PlanOf({prog, timeout}), 1);

  obs::MetricsRegistry registry;
  injector.SetMetrics(&registry);
  injector.InjectFlashProgramFail();
  injector.InjectFlashProgramFail();
  injector.InjectNvmeTimeout();

  EXPECT_EQ(registry.GetCounter("fault.flash.program_fails")->value(), 2u);
  EXPECT_EQ(registry.GetCounter("fault.nvme.timeouts")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("fault.crashes")->value(), 0u);
}

}  // namespace
}  // namespace xssd::fault
