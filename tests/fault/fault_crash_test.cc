// Plan-driven crash points and what survives them: graceful crashes keep
// the acknowledged prefix recoverable, hard crashes lose the fast side but
// never fabricate bytes, and the recovered run never spans a gap even when
// the crash fires mid-ring-wrap. Also the host half: a sync against a
// halted device fails fast and Reconnect() restores service.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "host/node.h"
#include "host/recovery.h"
#include "host/xcalls.h"
#include "sim/random.h"

namespace xssd {
namespace {

core::VillarsConfig SmallConfig() {
  core::VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 64;
  return config;
}

fault::FaultPlan CrashPlan(const std::string& site, uint32_t after_hits,
                           bool graceful) {
  fault::FaultPlan plan;
  plan.name = "crash";
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kCrash;
  spec.site = site;
  spec.after_hits = after_hits;
  spec.graceful = graceful;
  plan.faults.push_back(spec);
  return plan;
}

/// Drives a random append workload against `node` and pumps the simulator
/// until `stop` turns true (the crash landed and any emergency destage
/// finished). A plain Run() would never return: after the device halts the
/// client polls the frozen credit register forever. Returns bytes submitted.
size_t AppendUntil(host::StorageNode& node, const std::vector<uint8_t>& stream,
                   sim::Rng& rng, const std::function<bool()>& stop) {
  auto submitted = std::make_shared<size_t>(0);
  auto append_next = std::make_shared<std::function<void()>>();
  *append_next = [&node, &stream, &rng, submitted, append_next]() {
    size_t chunk = std::min<size_t>(32 + rng.Uniform(700),
                                    stream.size() - *submitted);
    if (chunk == 0) return;
    node.client().Append(stream.data() + *submitted, chunk,
                         [append_next](Status) { (*append_next)(); });
    *submitted += chunk;
  };
  (*append_next)();
  node.simulator().RunWhile(stop);
  return *submitted;
}

TEST(FaultCrashTest, PlanDrivenGracefulCrashStopsExactlyAtTheGap) {
  // The JSON plan format drives the crash end to end: the clause names a
  // persist-path site, so one staged chunk falls on the floor. The credit
  // counter can never cross the resulting hole, and recovery must stop on
  // it too — exactly, not approximately.
  Result<fault::FaultPlan> plan = fault::ParseFaultPlan(R"({
    "name": "persist-crash",
    "faults": [
      {"kind": "crash", "site": "cmb.persist", "after_hits": 12}
    ]
  })");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  sim::Simulator sim;
  host::StorageNode node(&sim, SmallConfig(), pcie::FabricConfig{}, "gc");
  ASSERT_TRUE(node.Init().ok());
  fault::FaultInjector injector(&sim, *plan, 11);
  node.ArmFaults(&injector, /*install_crash_handler=*/false);
  bool drained = false;
  injector.SetCrashHandler([&](const fault::FaultSpec& spec) {
    EXPECT_TRUE(spec.graceful);
    node.device().PowerFail([&]() { drained = true; });
  });

  sim::Rng rng(11);
  std::vector<uint8_t> stream(60000);
  for (auto& b : stream) b = static_cast<uint8_t>(rng.Next());
  size_t submitted = AppendUntil(node, stream, rng, [&]() { return drained; });

  ASSERT_TRUE(injector.crashed());
  ASSERT_TRUE(drained);
  EXPECT_EQ(injector.totals().crashes, 1u);
  uint64_t acknowledged = node.device().cmb().local_credit();
  // Hit 12 fell mid-stream, so the gap sits strictly inside what the host
  // pushed: bytes beyond it arrived (and drained) but cannot be credited.
  ASSERT_LT(acknowledged, submitted);

  node.device().Reboot();
  Result<host::RecoveredLog> recovered = host::RecoverLog(
      sim, node.driver(), node.device().destage().ring_start_lba(),
      node.device().destage().ring_lba_count());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // Everything acknowledged, nothing past the gap.
  EXPECT_EQ(recovered->end_offset(), acknowledged);
  EXPECT_EQ(std::memcmp(recovered->data.data(),
                        stream.data() + recovered->start_offset,
                        recovered->data.size()),
            0);
}

TEST(FaultCrashTest, HardCrashLosesTheFastSideButNeverFabricatesBytes) {
  // graceful=false routes through the device's installed crash handler to
  // CrashHard(): no supercap drain, so acknowledged-but-undestaged bytes
  // genuinely die. Recovery may fall short of the credit — that is the
  // failure mode being modeled — but what it does return must still be
  // byte-exact and contiguous.
  sim::Simulator sim;
  host::StorageNode node(&sim, SmallConfig(), pcie::FabricConfig{}, "hc");
  ASSERT_TRUE(node.Init().ok());
  fault::FaultInjector injector(
      &sim, CrashPlan("destage.emit_page", 3, /*graceful=*/false), 7);
  node.ArmFaults(&injector);

  sim::Rng rng(7);
  std::vector<uint8_t> stream(60000);
  for (auto& b : stream) b = static_cast<uint8_t>(rng.Next());
  size_t submitted =
      AppendUntil(node, stream, rng, [&]() { return injector.crashed(); });
  ASSERT_TRUE(injector.crashed());
  uint64_t acknowledged = node.device().cmb().local_credit();
  // Let the two already-issued page programs land on flash before reboot.
  sim.RunFor(sim::Ms(5));

  node.device().Reboot();
  Result<host::RecoveredLog> recovered = host::RecoverLog(
      sim, node.driver(), node.device().destage().ring_start_lba(),
      node.device().destage().ring_lba_count());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // The crash fired before the third page was even emitted; everything
  // acknowledged past the first two pages was never destaged and is gone.
  EXPECT_GT(recovered->end_offset(), 0u);
  EXPECT_LT(recovered->end_offset(), acknowledged);
  EXPECT_LE(recovered->end_offset(), submitted);
  EXPECT_EQ(std::memcmp(recovered->data.data(),
                        stream.data() + recovered->start_offset,
                        recovered->data.size()),
            0);
}

// Property sweep for the crash sites, mid-ring-wrap: the stream is larger
// than the 128 KiB PM ring and after_hits places the crash past the wrap
// point (persist hits are one per appended chunk, mean ~382 bytes; destage
// hits are one per ~16 KiB page, so the ring wraps after hit 9). Whatever
// the site and placement, RecoverLog must cover the acknowledged prefix
// (graceful crashes drain on supercap), return exact bytes, and never
// cross a gap.
struct CrashSiteCase {
  const char* site;
  uint32_t min_hits;  ///< first after_hits past the ring-wrap point
  uint32_t max_hits;  ///< last after_hits guaranteed to fire mid-stream
};

class CrashSitePropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(CrashSitePropertyTest, MidWrapCrashNeverRecoversPastAGap) {
  static constexpr CrashSiteCase kCases[] = {
      {"cmb.persist", 420, 700},
      {"destage.emit_page", 10, 16},
      {"destage.page_complete", 10, 16},
  };
  const uint64_t seed = std::get<0>(GetParam());
  const CrashSiteCase& site = kCases[std::get<1>(GetParam())];

  sim::Rng rng(seed * 977 + std::get<1>(GetParam()));
  sim::Simulator sim;
  core::VillarsConfig config = SmallConfig();
  host::StorageNode node(&sim, config, pcie::FabricConfig{}, "wrap");
  ASSERT_TRUE(node.Init().ok());

  uint32_t after_hits =
      site.min_hits +
      static_cast<uint32_t>(rng.Uniform(site.max_hits - site.min_hits));
  fault::FaultInjector injector(
      &sim, CrashPlan(site.site, after_hits, /*graceful=*/true), seed);
  node.ArmFaults(&injector, /*install_crash_handler=*/false);
  bool drained = false;
  injector.SetCrashHandler([&](const fault::FaultSpec&) {
    node.device().PowerFail([&]() { drained = true; });
  });

  // > 128 KiB so the PM ring wraps while the workload runs.
  std::vector<uint8_t> stream(300000);
  for (auto& b : stream) b = static_cast<uint8_t>(rng.Next());
  size_t submitted = AppendUntil(node, stream, rng, [&]() { return drained; });

  ASSERT_TRUE(injector.crashed())
      << site.site << " after_hits=" << after_hits << " never fired";
  ASSERT_TRUE(drained);
  uint64_t acknowledged = node.device().cmb().local_credit();
  // Witness that the crash really landed past the first ring wrap.
  EXPECT_GT(acknowledged, config.cmb.ring_bytes)
      << site.site << " after_hits=" << after_hits;

  node.device().Reboot();
  Result<host::RecoveredLog> recovered = host::RecoverLog(
      sim, node.driver(), node.device().destage().ring_start_lba(),
      node.device().destage().ring_lba_count());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  // (a) graceful crash: nothing acknowledged is lost.
  EXPECT_GE(recovered->end_offset(), acknowledged)
      << "acknowledged bytes lost (site " << site.site << ", seed " << seed
      << ")";
  // (b) bytes are exact.
  ASSERT_LE(recovered->end_offset(), submitted);
  EXPECT_EQ(std::memcmp(recovered->data.data(),
                        stream.data() + recovered->start_offset,
                        recovered->data.size()),
            0)
      << "recovered bytes differ (site " << site.site << ", seed " << seed
      << ")";
  // (c) never past a gap: a persist-path crash pins the credit below the
  // hole, and the contiguous recovered run must respect it exactly.
  if (std::string_view(site.site) == "cmb.persist") {
    EXPECT_EQ(recovered->end_offset(), acknowledged);
    EXPECT_LT(recovered->end_offset(), submitted);
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsBySite, CrashSitePropertyTest,
                         ::testing::Combine(::testing::Range<uint64_t>(0, 6),
                                            ::testing::Range(0, 3)));

TEST(FaultCrashTest, SyncAgainstHaltedDeviceFailsThenReconnectRestores) {
  // The host half of crash handling: a hard crash under an in-flight sync
  // must surface as Unavailable (not hang), and Reconnect() must establish
  // a working session against the rebooted device.
  sim::Simulator sim;
  host::XLogClientOptions options;
  options.sync_stall_timeout = sim::Ms(1);
  host::StorageNode node(&sim, SmallConfig(), pcie::FabricConfig{}, "rc",
                         options);
  ASSERT_TRUE(node.Init().ok());
  fault::FaultInjector injector(
      &sim, CrashPlan("cmb.persist", 3, /*graceful=*/false), 13);
  node.ArmFaults(&injector);

  // Three appends land as three persist events; the crash eats the third.
  std::vector<uint8_t> wal(9000, 0xC4);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(host::x_pwrite(sim, node.client(), wal.data() + 3000 * i, 3000),
              3000);
  }
  sim.RunFor(sim::Us(50));  // appends are posted; let the persists land
  ASSERT_TRUE(injector.crashed());
  EXPECT_EQ(node.device().cmb().local_credit(), 6000u);

  Status sync_status = Status::OK();
  node.client().Sync([&](Status status) { sync_status = status; });
  sim.Run();
  EXPECT_EQ(sync_status.code(), StatusCode::kUnavailable)
      << sync_status.ToString();
  EXPECT_EQ(node.client().sync_failures(), 1u);

  node.device().Reboot();
  ASSERT_TRUE(node.client().Reconnect().ok());
  EXPECT_EQ(node.client().reconnects(), 1u);
  EXPECT_EQ(node.client().written(), 0u);  // fresh epoch, fresh stream

  // The restored session logs durably again.
  std::vector<uint8_t> next(5000, 0x19);
  ASSERT_EQ(host::x_pwrite(sim, node.client(), next.data(), next.size()),
            static_cast<ssize_t>(next.size()));
  EXPECT_EQ(host::x_fsync(sim, node.client()), 0);
  EXPECT_GE(node.device().cmb().local_credit(), next.size());
}

TEST(FaultCrashTest, NvmeTimeoutSurfacesAsIoErrorThenClears) {
  // Injected command timeouts: IO submitted inside the window completes
  // late with an error; after the window the same path works.
  sim::Simulator sim;
  host::StorageNode node(&sim, SmallConfig(), pcie::FabricConfig{}, "to");
  ASSERT_TRUE(node.Init().ok());

  fault::FaultPlan plan;
  plan.name = "nvme";
  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kNvmeTimeout;
  spec.at = 0;
  spec.duration = sim::Ms(1);
  spec.delay = sim::Us(10);
  plan.faults.push_back(spec);
  fault::FaultInjector injector(&sim, plan, 3);
  node.ArmFaults(&injector);

  std::vector<uint8_t> block(16 * 1024, 0x42);  // one 16 KiB flash page
  Status write_status = Status::OK();
  sim::SimTime issued_at = sim.Now();
  node.driver().Write(100, block.data(), 1,
                      [&](Status status) { write_status = status; });
  sim.Run();
  EXPECT_EQ(write_status.code(), StatusCode::kIoError);
  // The error is a *late* completion — the injected abort delay elapsed.
  EXPECT_GE(sim.Now(), issued_at + sim::Us(10));
  EXPECT_EQ(injector.totals().nvme_timeouts, 1u);

  sim.RunFor(sim::Ms(2));  // leave the fault window
  write_status = Status::IoError("unset");
  node.driver().Write(100, block.data(), 1,
                      [&](Status status) { write_status = status; });
  sim.Run();
  ASSERT_TRUE(write_status.ok()) << write_status.ToString();
  std::vector<uint8_t> out;
  Status read_status = Status::IoError("unset");
  node.driver().Read(100, 1, [&](Status status, std::vector<uint8_t> data) {
    read_status = status;
    out = std::move(data);
  });
  sim.Run();
  ASSERT_TRUE(read_status.ok());
  EXPECT_EQ(out, block);
}

}  // namespace
}  // namespace xssd
