// Injected flash faults and the layers that absorb them: the array grows
// bad blocks, the FTL retires them and retries, the destage path re-issues.

#include <gtest/gtest.h>

#include "fault/fault_injector.h"
#include "flash/array.h"
#include "ftl/ftl.h"
#include "host/node.h"
#include "host/sync.h"
#include "host/xcalls.h"

namespace xssd {
namespace {

flash::Geometry SmallGeometry() {
  flash::Geometry geometry;
  geometry.channels = 2;
  geometry.dies_per_channel = 2;
  geometry.blocks_per_plane = 16;
  geometry.pages_per_block = 32;
  return geometry;
}

fault::FaultPlan OneFault(fault::FaultKind kind, sim::SimTime at = 0,
                          sim::SimTime duration = fault::FaultSpec::kForever) {
  fault::FaultPlan plan;
  plan.name = "one";
  fault::FaultSpec spec;
  spec.kind = kind;
  spec.at = at;
  spec.duration = duration;
  plan.faults.push_back(spec);
  return plan;
}

TEST(FaultFlashTest, InjectedProgramFailGrowsBadBlock) {
  sim::Simulator sim;
  flash::Array array(&sim, SmallGeometry(), flash::Timing{},
                     flash::Reliability{}, 1);
  fault::FaultInjector injector(
      &sim, OneFault(fault::FaultKind::kFlashProgramFail, 0, sim::Us(1)), 1);
  array.set_fault_injector(&injector);

  flash::Address addr{0, 0, 0, 0, 0};
  Status result = Status::OK();
  std::vector<uint8_t> page(SmallGeometry().page_bytes, 0x5A);
  array.Program(addr, page, [&](Status status) { result = status; });
  sim.Run();

  EXPECT_EQ(result.code(), StatusCode::kIoError);
  EXPECT_TRUE(array.IsBadBlock(addr));
  EXPECT_EQ(array.stats().program_failures, 1u);
  EXPECT_EQ(injector.totals().flash_program_fails, 1u);

  // Outside the window the array behaves normally again (fresh block).
  sim.RunFor(sim::Ms(1));
  flash::Address good{0, 0, 0, 1, 0};
  result = Status::IoError("unset");
  array.Program(good, page, [&](Status status) { result = status; });
  sim.Run();
  EXPECT_TRUE(result.ok());
}

TEST(FaultFlashTest, InjectedEraseFailRetiresBlock) {
  sim::Simulator sim;
  flash::Array array(&sim, SmallGeometry(), flash::Timing{},
                     flash::Reliability{}, 1);
  fault::FaultInjector injector(
      &sim, OneFault(fault::FaultKind::kFlashEraseFail), 1);
  array.set_fault_injector(&injector);

  flash::Address addr{0, 0, 0, 0, 0};
  Status result = Status::OK();
  array.Erase(addr, [&](Status status) { result = status; });
  sim.Run();

  EXPECT_EQ(result.code(), StatusCode::kIoError);
  EXPECT_TRUE(array.IsBadBlock(addr));
  EXPECT_EQ(array.stats().erase_failures, 1u);

  // A bad block refuses further work without consuming die time.
  Status second = Status::OK();
  array.Erase(addr, [&](Status status) { second = status; });
  sim.Run();
  EXPECT_FALSE(second.ok());
  EXPECT_GE(array.stats().bad_block_rejects, 1u);
}

TEST(FaultFlashTest, InjectedUncorrectableReadReturnsCorruption) {
  sim::Simulator sim;
  flash::Array array(&sim, SmallGeometry(), flash::Timing{},
                     flash::Reliability{}, 1);
  flash::Address addr{0, 0, 0, 0, 0};
  std::vector<uint8_t> page(SmallGeometry().page_bytes, 0x77);
  Status programmed = Status::IoError("unset");
  array.Program(addr, page, [&](Status status) { programmed = status; });
  sim.Run();
  ASSERT_TRUE(programmed.ok());

  fault::FaultInjector injector(
      &sim, OneFault(fault::FaultKind::kFlashReadUncorrectable), 1);
  array.set_fault_injector(&injector);

  Status read_status = Status::OK();
  array.Read(addr, [&](Status status, std::vector<uint8_t>) {
    read_status = status;
  });
  sim.Run();
  EXPECT_EQ(read_status.code(), StatusCode::kCorruption);
  EXPECT_EQ(array.stats().uncorrectable_reads, 1u);

  // Detach: the same page reads back clean — the medium was never damaged.
  array.set_fault_injector(nullptr);
  std::vector<uint8_t> out;
  array.Read(addr, [&](Status status, std::vector<uint8_t> data) {
    read_status = status;
    out = std::move(data);
  });
  sim.Run();
  EXPECT_TRUE(read_status.ok());
  EXPECT_EQ(out, page);
}

TEST(FaultFlashTest, FtlRetiresInjectedBadBlockAndRetries) {
  sim::Simulator sim;
  flash::Array array(&sim, SmallGeometry(), flash::Timing{},
                     flash::Reliability{}, 1);
  ftl::Ftl ftl(&sim, &array, ftl::FtlConfig{});
  // Fail every program for a short burst, then recover; the FTL must chew
  // through retired blocks until a program lands.
  fault::FaultInjector injector(
      &sim, OneFault(fault::FaultKind::kFlashProgramFail, 0, sim::Ms(2)), 1);
  array.set_fault_injector(&injector);

  Status result = Status::IoError("unset");
  std::vector<uint8_t> data(ftl.page_bytes(), 0x3C);
  ftl.WriteDirect(ftl::IoClass::kDestage, 0, data,
                  [&](Status status) { result = status; });
  sim.Run();

  EXPECT_TRUE(result.ok()) << result.ToString();
  EXPECT_GE(ftl.stats().bad_block_retires, 1u);
  EXPECT_GE(injector.totals().flash_program_fails, 1u);
}

TEST(FaultFlashTest, DestageRetriesThroughProgramFailBurst) {
  // End-to-end: a program-fail burst hits while the destage module moves
  // the ring to flash. The FTL retires blocks, the destage module re-issues
  // on top, and every appended byte still lands on the conventional side.
  sim::Simulator sim;
  core::VillarsConfig config;
  config.geometry = SmallGeometry();
  config.destage.ring_lba_count = 64;
  host::StorageNode node(&sim, config, pcie::FabricConfig{}, "ffail");
  ASSERT_TRUE(node.Init().ok());

  fault::FaultInjector injector(
      &sim,
      OneFault(fault::FaultKind::kFlashProgramFail, sim::Us(20), sim::Us(400)),
      1);
  node.ArmFaults(&injector);
  obs::MetricsRegistry registry;
  injector.SetMetrics(&registry);
  node.EnableMetrics(&registry);

  std::vector<uint8_t> wal(40000);
  for (size_t i = 0; i < wal.size(); ++i) wal[i] = static_cast<uint8_t>(i * 7);
  ASSERT_EQ(host::x_pwrite(sim, node.client(), wal.data(), wal.size()),
            static_cast<ssize_t>(wal.size()));
  ASSERT_EQ(host::x_fsync(sim, node.client()), 0);
  sim.RunFor(sim::Ms(20));  // let destaging finish through the retries

  EXPECT_GE(injector.totals().flash_program_fails, 1u);
  EXPECT_GE(node.device().destage().destaged(), wal.size());

  // The destaged bytes read back exactly.
  std::vector<uint8_t> tail(wal.size());
  ASSERT_EQ(host::x_pread(sim, node.client(), node.driver(), tail.data(),
                          tail.size()),
            static_cast<ssize_t>(tail.size()));
  EXPECT_EQ(tail, wal);
  EXPECT_EQ(registry.GetCounter("fault.flash.program_fails")->value(),
            injector.totals().flash_program_fails);
}

}  // namespace
}  // namespace xssd
