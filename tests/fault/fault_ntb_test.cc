// Injected NTB link faults and the transport-level healing on top:
// adapter drop/stall semantics, retransmit-with-backoff reconvergence, and
// degraded-mode entry/exit.

#include <gtest/gtest.h>

#include <cstring>

#include "fault/fault_injector.h"
#include "host/node.h"
#include "host/xcalls.h"
#include "ntb/ntb.h"

namespace xssd {
namespace {

/// Records MMIO traffic on a remote fabric.
class SinkDevice : public pcie::MmioDevice {
 public:
  explicit SinkDevice(size_t size) : memory(size, 0) {}
  void OnMmioWrite(uint64_t offset, const uint8_t* data,
                   size_t len) override {
    std::memcpy(memory.data() + offset, data, len);
    ++writes;
    last_write_at = 0;
  }
  void OnMmioRead(uint64_t offset, uint8_t* out, size_t len) override {
    std::memcpy(out, memory.data() + offset, len);
  }
  std::vector<uint8_t> memory;
  int writes = 0;
  sim::SimTime last_write_at = 0;
};

fault::FaultPlan LinkPlan(fault::FaultKind kind, sim::SimTime at,
                          sim::SimTime duration, sim::SimTime delay = 0) {
  fault::FaultPlan plan;
  plan.name = "link";
  fault::FaultSpec spec;
  spec.kind = kind;
  spec.at = at;
  spec.duration = duration;
  spec.delay = delay;
  plan.faults.push_back(spec);
  return plan;
}

TEST(FaultNtbAdapterTest, LinkDownDropsForwardedWritesSilently) {
  sim::Simulator sim;
  pcie::PcieFabric local(&sim, pcie::FabricConfig{}, "local");
  pcie::PcieFabric remote(&sim, pcie::FabricConfig{}, "remote");
  ntb::NtbAdapter adapter(&sim, &local, ntb::NtbConfig{}, "ntb");
  SinkDevice sink(8192);
  ASSERT_TRUE(local.AddMmioRegion(0x1000, 4096, &adapter, "win").ok());
  ASSERT_TRUE(remote.AddMmioRegion(0x9000, 8192, &sink, "sink").ok());
  ASSERT_TRUE(adapter.AddWindow(0, 4096, &remote, 0x9000).ok());

  fault::FaultInjector injector(
      &sim, LinkPlan(fault::FaultKind::kNtbLinkDown, 0, sim::Us(100)), 1);
  adapter.set_fault_injector(&injector);

  uint8_t data[64] = {0x5A};
  bool posted = false;
  local.HostWrite(0x1000, data, 64, 64, [&]() { posted = true; });
  sim.Run();

  // The posted write completes from the sender's view — the loss is
  // invisible until the shadow counters stop moving.
  EXPECT_TRUE(posted);
  EXPECT_EQ(sink.writes, 0);
  EXPECT_EQ(adapter.dropped_writes(), 1u);
  EXPECT_EQ(adapter.dropped_payload_bytes(), 64u);
  // Dropped writes consume no cable bandwidth.
  EXPECT_EQ(adapter.forwarded_payload_bytes(), 0u);

  // After the flap the same write goes through.
  sim.RunFor(sim::Us(200));
  local.HostWrite(0x1000, data, 64, 64);
  sim.Run();
  EXPECT_EQ(sink.writes, 1);
}

TEST(FaultNtbAdapterTest, LinkStallDelaysDelivery) {
  auto arrival_time = [](sim::SimTime stall) {
    sim::Simulator sim;
    pcie::PcieFabric local(&sim, pcie::FabricConfig{}, "local");
    pcie::PcieFabric remote(&sim, pcie::FabricConfig{}, "remote");
    ntb::NtbAdapter adapter(&sim, &local, ntb::NtbConfig{}, "ntb");
    SinkDevice sink(8192);
    EXPECT_TRUE(local.AddMmioRegion(0x1000, 4096, &adapter, "win").ok());
    EXPECT_TRUE(remote.AddMmioRegion(0x9000, 8192, &sink, "sink").ok());
    EXPECT_TRUE(adapter.AddWindow(0, 4096, &remote, 0x9000).ok());
    fault::FaultInjector injector(
        &sim,
        LinkPlan(fault::FaultKind::kNtbLinkStall, 0, sim::Us(100), stall), 1);
    if (stall > 0) adapter.set_fault_injector(&injector);
    uint8_t byte = 1;
    local.HostWrite(0x1000, &byte, 1, 64);
    sim.Run();
    EXPECT_EQ(sink.writes, 1);
    return sim.Now();
  };

  sim::SimTime clean = arrival_time(0);
  sim::SimTime stalled = arrival_time(sim::Us(9));
  EXPECT_EQ(stalled, clean + sim::Us(9));
}

core::VillarsConfig RetransmitConfig() {
  core::VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 64;
  config.transport.retransmit_timeout = sim::Us(50);
  return config;
}

TEST(FaultNtbReplicationTest, FlapRetransmitReconvergesWithoutLossOrDup) {
  sim::Simulator sim;
  core::VillarsConfig config = RetransmitConfig();
  host::StorageNode primary(&sim, config, pcie::FabricConfig{}, "pri");
  host::StorageNode secondary(&sim, config, pcie::FabricConfig{}, "sec");
  ASSERT_TRUE(primary.Init().ok());
  ASSERT_TRUE(secondary.Init().ok());
  host::ReplicationGroup group({&primary, &secondary});
  ASSERT_TRUE(
      group.Setup(core::ReplicationProtocol::kEager, sim::UsF(0.8)).ok());

  // Drop every mirror write for the first 600 us — the whole append burst
  // below lands inside the flap. Only the retransmit path can heal it.
  fault::FaultInjector injector(
      &sim, LinkPlan(fault::FaultKind::kNtbLinkDown, 0, sim::Us(600)), 5);
  primary.ArmFaults(&injector);

  std::vector<uint8_t> wal(24000);
  for (size_t i = 0; i < wal.size(); ++i) {
    wal[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  ASSERT_EQ(host::x_pwrite(sim, primary.client(), wal.data(), wal.size()),
            static_cast<ssize_t>(wal.size()));
  // Eager fsync can only return once the secondary holds every byte, i.e.
  // after the flap ends and retransmission catches it up.
  ASSERT_EQ(host::x_fsync(sim, primary.client()), 0);
  EXPECT_GE(sim.Now(), sim::Us(600));

  // Writes were really lost, and really re-mirrored.
  EXPECT_GT(primary.ntb().dropped_writes(), 0u);
  EXPECT_GE(primary.device().transport().retransmit_rounds(), 1u);
  EXPECT_GT(primary.device().transport().retransmitted_bytes(), 0u);

  // Reconvergence with zero lost and zero duplicate log bytes: the
  // secondary's credit equals the stream length exactly (duplicates would
  // have to extend past it; the interval set cannot double-count), its
  // shadow on the primary agrees, and the replica is bit-exact.
  EXPECT_EQ(secondary.device().cmb().local_credit(), wal.size());
  sim.RunFor(sim::Us(10));  // one more shadow update cycle
  EXPECT_EQ(primary.device().transport().shadow_counter(0), wal.size());
  EXPECT_EQ(primary.device().EffectiveCredit(), wal.size());
  std::vector<uint8_t> replica(wal.size());
  secondary.device().cmb().CopyOut(0, replica.data(), replica.size());
  EXPECT_EQ(replica, wal);
}

TEST(FaultNtbReplicationTest, LongFlapEntersAndExitsDegradedMode) {
  sim::Simulator sim;
  core::VillarsConfig config = RetransmitConfig();
  config.transport.degrade_timeout = sim::Us(300);
  host::StorageNode primary(&sim, config, pcie::FabricConfig{}, "pri");
  host::StorageNode secondary(&sim, config, pcie::FabricConfig{}, "sec");
  ASSERT_TRUE(primary.Init().ok());
  ASSERT_TRUE(secondary.Init().ok());
  host::ReplicationGroup group({&primary, &secondary});
  ASSERT_TRUE(
      group.Setup(core::ReplicationProtocol::kEager, sim::UsF(0.8)).ok());

  fault::FaultInjector injector(
      &sim, LinkPlan(fault::FaultKind::kNtbLinkDown, 0, sim::Ms(2)), 5);
  primary.ArmFaults(&injector);
  obs::MetricsRegistry registry;
  injector.SetMetrics(&registry);
  primary.EnableMetrics(&registry);

  std::vector<uint8_t> wal(10000, 0x6E);
  ASSERT_EQ(host::x_pwrite(sim, primary.client(), wal.data(), wal.size()),
            static_cast<ssize_t>(wal.size()));

  // Deep inside the flap, past the degrade timeout: the primary gives up
  // waiting and falls back to local durability so logging can continue.
  sim.RunFor(sim::Ms(1));
  core::TransportModule& transport = primary.device().transport();
  EXPECT_TRUE(transport.degraded());
  EXPECT_EQ(transport.degraded_entries(), 1u);
  EXPECT_LT(transport.shadow_counter(0), wal.size());
  EXPECT_EQ(primary.device().EffectiveCredit(), wal.size());  // local fallback
  uint64_t word = transport.StatusWord(primary.device().cmb().local_credit());
  EXPECT_NE(word & core::StatusBits::kDegraded, 0u);

  // Link returns; retransmission catches the secondary up and degraded
  // mode ends on the shadow advance that closes the gap.
  sim.RunFor(sim::Ms(9));
  EXPECT_FALSE(transport.degraded());
  EXPECT_EQ(transport.shadow_counter(0), wal.size());
  word = transport.StatusWord(primary.device().cmb().local_credit());
  EXPECT_EQ(word & core::StatusBits::kDegraded, 0u);
  EXPECT_EQ(secondary.device().cmb().local_credit(), wal.size());
  EXPECT_EQ(registry.GetCounter("transport.degraded_entries")->value(), 1u);
  EXPECT_GT(registry.GetCounter("fault.ntb.dropped_writes")->value(), 0u);
}

}  // namespace
}  // namespace xssd
