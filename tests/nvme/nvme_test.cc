#include <gtest/gtest.h>

#include <cstring>

#include "host/node.h"
#include "host/sync.h"
#include "nvme/command.h"

namespace xssd::nvme {
namespace {

TEST(NvmeCommand, SqeEncodeDecodeRoundTrip) {
  Command cmd;
  cmd.opcode = static_cast<uint8_t>(IoOpcode::kWrite);
  cmd.cid = 0x1234;
  cmd.nsid = 1;
  cmd.prp1 = 0xDEADBEEF00;
  cmd.set_slba(0x1'0000'0042);
  cmd.set_nlb(4);
  cmd.cdw13 = 99;

  uint8_t image[kSqeBytes];
  EncodeCommand(cmd, image);
  Command decoded = DecodeCommand(image);
  EXPECT_EQ(decoded.opcode, cmd.opcode);
  EXPECT_EQ(decoded.cid, cmd.cid);
  EXPECT_EQ(decoded.prp1, cmd.prp1);
  EXPECT_EQ(decoded.slba(), 0x1'0000'0042u);
  EXPECT_EQ(decoded.nlb0() + 1, 4u);
  EXPECT_EQ(decoded.cdw13, 99u);
}

TEST(NvmeCommand, CqeEncodeDecodeRoundTrip) {
  Completion cpl;
  cpl.result = 77;
  cpl.sq_id = 1;
  cpl.sq_head = 42;
  cpl.cid = 0xBEEF;
  cpl.status = CmdStatus::kLbaOutOfRange;
  cpl.phase = true;

  uint8_t image[kCqeBytes];
  EncodeCompletion(cpl, image);
  Completion decoded = DecodeCompletion(image);
  EXPECT_EQ(decoded.result, 77u);
  EXPECT_EQ(decoded.sq_head, 42);
  EXPECT_EQ(decoded.cid, 0xBEEF);
  EXPECT_EQ(decoded.status, CmdStatus::kLbaOutOfRange);
  EXPECT_TRUE(decoded.phase);
  EXPECT_FALSE(decoded.ok());
}

core::VillarsConfig SmallConfig() {
  core::VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 64;
  return config;
}

class NvmeStackTest : public ::testing::Test {
 protected:
  NvmeStackTest()
      : node_(&sim_, SmallConfig(), pcie::FabricConfig{}, "nvme-test"),
        runner_(&sim_) {
    EXPECT_TRUE(node_.Init().ok());
  }

  sim::Simulator sim_;
  host::StorageNode node_;
  host::SyncRunner runner_;
};

TEST_F(NvmeStackTest, WriteFlushReadThroughQueues) {
  uint32_t block = node_.driver().block_bytes();
  std::vector<uint8_t> data(block, 0x3D);
  Status status = runner_.Await([&](std::function<void(Status)> done) {
    node_.driver().Write(500, data.data(), 1, std::move(done));
  });
  ASSERT_TRUE(status.ok());
  ASSERT_TRUE(runner_
                  .Await([&](std::function<void(Status)> done) {
                    node_.driver().Flush(std::move(done));
                  })
                  .ok());
  auto read = runner_.AwaitValue<std::vector<uint8_t>>(
      [&](std::function<void(Status, std::vector<uint8_t>)> done) {
        node_.driver().Read(500, 1, std::move(done));
      });
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(NvmeStackTest, MultiBlockTransfer) {
  uint32_t block = node_.driver().block_bytes();
  std::vector<uint8_t> data(block * 4);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  ASSERT_TRUE(runner_
                  .Await([&](std::function<void(Status)> done) {
                    node_.driver().Write(600, data.data(), 4,
                                         std::move(done));
                  })
                  .ok());
  auto read = runner_.AwaitValue<std::vector<uint8_t>>(
      [&](std::function<void(Status, std::vector<uint8_t>)> done) {
        node_.driver().Read(600, 4, std::move(done));
      });
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(NvmeStackTest, LbaOutOfRangeRejected) {
  uint64_t bad_lba = node_.driver().namespace_blocks();
  std::vector<uint8_t> data(node_.driver().block_bytes(), 0);
  Status status = runner_.Await([&](std::function<void(Status)> done) {
    node_.driver().Write(bad_lba, data.data(), 1, std::move(done));
  });
  EXPECT_FALSE(status.ok());
  auto read = runner_.AwaitValue<std::vector<uint8_t>>(
      [&](std::function<void(Status, std::vector<uint8_t>)> done) {
        node_.driver().Read(bad_lba, 1, std::move(done));
      });
  EXPECT_FALSE(read.ok());
}

TEST_F(NvmeStackTest, IdentifyReportsNamespaceSize) {
  Command cmd;
  cmd.opcode = static_cast<uint8_t>(AdminOpcode::kIdentify);
  Completion result;
  bool got = false;
  node_.driver().Admin(cmd, [&](Completion cpl) {
    result = cpl;
    got = true;
  });
  sim_.RunWhile([&]() { return got; });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.result, node_.driver().namespace_blocks());
}

TEST_F(NvmeStackTest, ManyOutstandingCommandsAllComplete) {
  uint32_t block = node_.driver().block_bytes();
  std::vector<uint8_t> data(block, 0x99);
  int completions = 0;
  for (int i = 0; i < 100; ++i) {
    node_.driver().Write(700 + i, data.data(), 1,
                         [&](Status status) {
                           EXPECT_TRUE(status.ok());
                           ++completions;
                         });
  }
  sim_.Run();
  EXPECT_EQ(completions, 100);
  EXPECT_EQ(node_.driver().inflight(), 0u);
}

TEST_F(NvmeStackTest, ReadsObserveMostRecentWrite) {
  uint32_t block = node_.driver().block_bytes();
  std::vector<uint8_t> v1(block, 1), v2(block, 2);
  ASSERT_TRUE(runner_
                  .Await([&](std::function<void(Status)> done) {
                    node_.driver().Write(800, v1.data(), 1, std::move(done));
                  })
                  .ok());
  ASSERT_TRUE(runner_
                  .Await([&](std::function<void(Status)> done) {
                    node_.driver().Write(800, v2.data(), 1, std::move(done));
                  })
                  .ok());
  auto read = runner_.AwaitValue<std::vector<uint8_t>>(
      [&](std::function<void(Status, std::vector<uint8_t>)> done) {
        node_.driver().Read(800, 1, std::move(done));
      });
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)[0], 2);
}

TEST_F(NvmeStackTest, UnknownVendorOpcodeHandledByDevice) {
  Command cmd;
  cmd.opcode = 0xFE;  // vendor range, not implemented by Villars
  Completion result;
  bool got = false;
  node_.driver().Admin(cmd, [&](Completion cpl) {
    result = cpl;
    got = true;
  });
  sim_.RunWhile([&]() { return got; });
  EXPECT_EQ(result.status, CmdStatus::kInvalidOpcode);
}

}  // namespace
}  // namespace xssd::nvme
