#include "pcie/fabric.h"

#include <gtest/gtest.h>

#include <cstring>

#include "pcie/store_engine.h"

namespace xssd::pcie {
namespace {

/// Records all traffic it receives; serves reads from a backing buffer.
class RecordingDevice : public MmioDevice {
 public:
  explicit RecordingDevice(size_t size) : memory_(size, 0) {}

  void OnMmioWrite(uint64_t offset, const uint8_t* data,
                   size_t len) override {
    std::memcpy(memory_.data() + offset, data, len);
    writes_.push_back({offset, len});
  }
  void OnMmioRead(uint64_t offset, uint8_t* out, size_t len) override {
    std::memcpy(out, memory_.data() + offset, len);
  }

  std::vector<uint8_t> memory_;
  std::vector<std::pair<uint64_t, size_t>> writes_;
};

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : fabric_(&sim_, FabricConfig{}, "test"), device_(4096) {
    EXPECT_TRUE(fabric_.AddMmioRegion(0x1000, 4096, &device_, "dev").ok());
  }

  sim::Simulator sim_;
  PcieFabric fabric_;
  RecordingDevice device_;
};

TEST_F(FabricTest, Gen2x4Is2GBps) {
  EXPECT_DOUBLE_EQ(fabric_.link_bytes_per_sec(), 2e9);
}

TEST_F(FabricTest, OverlappingRegionRejected) {
  RecordingDevice other(16);
  EXPECT_FALSE(fabric_.AddMmioRegion(0x1800, 16, &other, "overlap").ok());
  EXPECT_TRUE(fabric_.AddMmioRegion(0x10000, 16, &other, "fine").ok());
}

TEST_F(FabricTest, NullDeviceRejected) {
  EXPECT_FALSE(fabric_.AddMmioRegion(0x20000, 16, nullptr, "null").ok());
}

TEST_F(FabricTest, HostWriteDeliversDataAfterLinkAndPropagation) {
  uint8_t data[16];
  for (int i = 0; i < 16; ++i) data[i] = static_cast<uint8_t>(i);
  fabric_.HostWrite(0x1100, data, 16, 64);
  EXPECT_TRUE(device_.writes_.empty());  // not delivered synchronously
  sim_.Run();
  ASSERT_EQ(device_.writes_.size(), 1u);
  EXPECT_EQ(device_.writes_[0].first, 0x100u);  // region-relative offset
  EXPECT_EQ(std::memcmp(device_.memory_.data() + 0x100, data, 16), 0);
  // (16 + 26 overhead) bytes at 2 GB/s = 21 ns + 250 ns propagation.
  EXPECT_NEAR(static_cast<double>(sim_.Now()), 271, 2);
}

TEST_F(FabricTest, PostedCallbackFiresAtLinkAcceptNotDelivery) {
  uint8_t data[16] = {0};
  sim::SimTime posted_at = 0;
  fabric_.HostWrite(0x1000, data, 16, 64,
                    [&]() { posted_at = sim_.Now(); });
  sim_.Run();
  EXPECT_GT(posted_at, 0u);
  EXPECT_LT(posted_at, sim_.Now());  // delivery (with propagation) is later
}

TEST_F(FabricTest, ChunkingChargesPerTlpOverhead) {
  // 128 bytes as 64 B WC lines vs 8 B UC stores: UC occupies the link for
  // longer.
  uint8_t data[128] = {0};
  sim::SimTime wc_done = 0;
  fabric_.HostWrite(0x1000, data, 128, 64, [&]() { wc_done = sim_.Now(); });
  sim_.Run();
  sim::SimTime wc_elapsed = wc_done;

  sim::Simulator sim2;
  PcieFabric fabric2(&sim2, FabricConfig{}, "t2");
  RecordingDevice dev2(4096);
  ASSERT_TRUE(fabric2.AddMmioRegion(0x1000, 4096, &dev2, "dev").ok());
  sim::SimTime uc_done = 0;
  fabric2.HostWrite(0x1000, data, 128, 8, [&]() { uc_done = sim2.Now(); });
  sim2.Run();
  EXPECT_GT(uc_done, wc_elapsed);
}

TEST_F(FabricTest, HostReadReturnsDeviceBytes) {
  device_.memory_[0x200] = 0xAB;
  device_.memory_[0x201] = 0xCD;
  std::vector<uint8_t> got;
  fabric_.HostRead(0x1200, 2, [&](std::vector<uint8_t> data) {
    got = std::move(data);
  });
  sim_.Run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 0xAB);
  EXPECT_EQ(got[1], 0xCD);
  EXPECT_GT(sim_.Now(), 900u);  // a non-posted round trip is ~1 us
}

TEST_F(FabricTest, HostReadObservesStateAtServiceTime) {
  // A read issued before a write lands still sees the pre-write value if
  // it is serviced first; ordering is by virtual time, not call order.
  std::vector<uint8_t> got;
  fabric_.HostRead(0x1000, 1,
                   [&](std::vector<uint8_t> data) { got = std::move(data); });
  sim_.Run();
  EXPECT_EQ(got[0], 0);
}

TEST_F(FabricTest, DmaRoundTrip) {
  uint8_t payload[256];
  for (int i = 0; i < 256; ++i) payload[i] = static_cast<uint8_t>(i ^ 0x5A);
  bool wrote = false;
  fabric_.DmaToHost(0x8000, payload, 256, [&]() { wrote = true; });
  sim_.Run();
  ASSERT_TRUE(wrote);
  EXPECT_EQ(std::memcmp(fabric_.host_memory() + 0x8000, payload, 256), 0);

  std::vector<uint8_t> read_back;
  fabric_.DmaFromHost(0x8000, 256, [&](std::vector<uint8_t> data) {
    read_back = std::move(data);
  });
  sim_.Run();
  EXPECT_EQ(std::memcmp(read_back.data(), payload, 256), 0);
}

TEST_F(FabricTest, FunctionalAccessorsBypassTiming) {
  uint8_t value = 0x77;
  EXPECT_TRUE(fabric_.FunctionalWrite(0x1400, &value, 1).ok());
  uint8_t out = 0;
  EXPECT_TRUE(fabric_.FunctionalRead(0x1400, &out, 1).ok());
  EXPECT_EQ(out, 0x77);
  EXPECT_EQ(sim_.Now(), 0u);  // no virtual time passed
  EXPECT_TRUE(fabric_.FunctionalRead(0x9999999, &out, 1).IsOutOfRange());
}

TEST(StoreEngine, ModeSelectsChunk) {
  sim::Simulator sim;
  PcieFabric fabric(&sim, FabricConfig{}, "t");
  StoreEngine wc(&fabric, MmioMode::kWriteCombining);
  StoreEngine uc(&fabric, MmioMode::kUncached);
  EXPECT_EQ(wc.ChunkBytes(), 64u);
  EXPECT_EQ(uc.ChunkBytes(), 8u);
  EXPECT_EQ(wc.WireBytes(128), 128 + 2 * kTlpOverheadBytes);
  EXPECT_EQ(uc.WireBytes(128), 128 + 16 * kTlpOverheadBytes);
}

}  // namespace
}  // namespace xssd::pcie
