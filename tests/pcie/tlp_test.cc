#include "pcie/tlp.h"

#include <gtest/gtest.h>

namespace xssd::pcie {
namespace {

TEST(Tlp, EncodeDecodeRoundTripWrite) {
  Tlp tlp;
  tlp.type = TlpType::kMemWrite;
  tlp.address = 0xE000'1234;
  tlp.tag = 17;
  tlp.payload = {1, 2, 3, 4, 5};
  auto wire = EncodeTlp(tlp);
  Result<Tlp> decoded = DecodeTlp(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, TlpType::kMemWrite);
  EXPECT_EQ(decoded->address, 0xE000'1234u);
  EXPECT_EQ(decoded->tag, 17);
  EXPECT_EQ(decoded->payload, tlp.payload);
}

TEST(Tlp, EncodeDecodeRoundTripRead) {
  Tlp tlp;
  tlp.type = TlpType::kMemRead;
  tlp.address = 0xF000'0000;
  tlp.read_len = 64;
  auto wire = EncodeTlp(tlp);
  Result<Tlp> decoded = DecodeTlp(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, TlpType::kMemRead);
  EXPECT_EQ(decoded->read_len, 64u);
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(Tlp, DecodeRejectsShortImage) {
  std::vector<uint8_t> wire(5, 0);
  EXPECT_TRUE(DecodeTlp(wire).status().IsCorruption());
}

TEST(Tlp, DecodeRejectsBadType) {
  Tlp tlp;
  auto wire = EncodeTlp(tlp);
  wire[0] = 99;
  EXPECT_TRUE(DecodeTlp(wire).status().IsCorruption());
}

TEST(Tlp, DecodeRejectsLengthMismatch) {
  Tlp tlp;
  tlp.payload = {1, 2, 3};
  auto wire = EncodeTlp(tlp);
  wire.pop_back();
  EXPECT_TRUE(DecodeTlp(wire).status().IsCorruption());
}

TEST(Tlp, TlpCountChunking) {
  EXPECT_EQ(TlpCountFor(0, 64), 0u);
  EXPECT_EQ(TlpCountFor(1, 64), 1u);
  EXPECT_EQ(TlpCountFor(64, 64), 1u);
  EXPECT_EQ(TlpCountFor(65, 64), 2u);
  EXPECT_EQ(TlpCountFor(256, 8), 32u);
}

TEST(Tlp, WireBytesIncludePerPacketOverhead) {
  EXPECT_EQ(WireBytesFor(64, 64), 64 + kTlpOverheadBytes);
  EXPECT_EQ(WireBytesFor(128, 64), 128 + 2 * kTlpOverheadBytes);
  // Uncached stores pay overhead every 8 bytes.
  EXPECT_EQ(WireBytesFor(64, 8), 64 + 8 * kTlpOverheadBytes);
}

TEST(Tlp, WireBytesMatchesEncodedSizeClass) {
  // The analytic model and an actual encoded packet agree on payload size.
  Tlp tlp;
  tlp.payload.assign(64, 0xCC);
  EXPECT_EQ(TlpWireBytes(tlp), 64 + kTlpOverheadBytes);
}

}  // namespace
}  // namespace xssd::pcie
