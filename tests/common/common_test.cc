#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/status.h"
#include "common/units.h"

namespace xssd {
namespace {

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status status = Status::NotFound("missing row");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing row");
  EXPECT_EQ(status.ToString(), "NotFound: missing row");
}

TEST(Status, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_FALSE(Status::IoError("x").IsNotFound());
}

TEST(Status, EqualityIsByCode) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

Status Inner(bool fail) {
  if (fail) return Status::Aborted("inner");
  return Status::OK();
}
Status Outer(bool fail) {
  XSSD_RETURN_IF_ERROR(Inner(fail));
  return Status::OK();
}

TEST(Status, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Outer(false).ok());
  EXPECT_EQ(Outer(true).code(), StatusCode::kAborted);
}

TEST(Result, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(Result, MoveOutValue) {
  Result<std::string> result(std::string("hello"));
  std::string s = std::move(result).value();
  EXPECT_EQ(s, "hello");
}

TEST(Crc32c, KnownVectors) {
  // CRC-32C("123456789") = 0xE3069283 (well-known check value).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  // Empty input.
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32c, SeedChaining) {
  const char data[] = "hello world";
  uint32_t whole = Crc32c(data, 11);
  uint32_t part = Crc32c(data, 5);
  uint32_t chained = Crc32c(data + 5, 6, part);
  EXPECT_EQ(whole, chained);
}

TEST(Crc32c, DetectsBitFlip) {
  std::vector<uint8_t> data(100, 0xAA);
  uint32_t clean = Crc32c(data.data(), data.size());
  data[50] ^= 0x01;
  EXPECT_NE(clean, Crc32c(data.data(), data.size()));
}

TEST(Units, Helpers) {
  EXPECT_EQ(KiB(2), 2048u);
  EXPECT_EQ(MiB(1), 1048576u);
  EXPECT_EQ(GiB(1), 1073741824u);
}

}  // namespace
}  // namespace xssd
