#include "host/xlog_client.h"

#include <gtest/gtest.h>

#include "host/node.h"
#include "host/sync.h"
#include "host/xcalls.h"
#include "sim/random.h"

namespace xssd::host {
namespace {

core::VillarsConfig SmallConfig() {
  core::VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 128;
  return config;
}

class XLogClientTest : public ::testing::Test {
 protected:
  XLogClientTest()
      : node_(&sim_, SmallConfig(), pcie::FabricConfig{}, "client-test") {
    EXPECT_TRUE(node_.Init().ok());
  }

  sim::Simulator sim_;
  StorageNode node_;
};

TEST_F(XLogClientTest, SetupReadsGeometry) {
  EXPECT_EQ(node_.client().queue_bytes(), 32u * 1024);
  EXPECT_EQ(node_.client().ring_bytes(), 128u * 1024);
}

TEST_F(XLogClientTest, AppendAdvancesWrittenAndSyncWaitsForCredit) {
  std::vector<uint8_t> data(5000, 0xCD);
  EXPECT_EQ(x_pwrite(sim_, node_.client(), data.data(), data.size()), 5000);
  EXPECT_EQ(node_.client().written(), 5000u);
  EXPECT_EQ(x_fsync(sim_, node_.client()), 0);
  EXPECT_GE(node_.client().credit_cache(), 5000u);
  EXPECT_GE(node_.device().cmb().local_credit(), 5000u);
}

TEST_F(XLogClientTest, EmptyAppendSucceedsImmediately) {
  Status status = Status::Internal("pending");
  node_.client().Append(nullptr, 0, [&](Status s) { status = s; });
  EXPECT_TRUE(status.ok());
}

TEST_F(XLogClientTest, AppendLargerThanQueuePaysCreditPolls) {
  // 128 KiB through a 32 KiB staging window: the client must pause and
  // poll the credit counter at least a few times (Figure 8 protocol).
  std::vector<uint8_t> data(128 * 1024, 0xEE);
  uint64_t polls_before = node_.client().credit_polls();
  EXPECT_EQ(x_pwrite(sim_, node_.client(), data.data(), data.size()),
            static_cast<ssize_t>(data.size()));
  EXPECT_GE(node_.client().credit_polls() - polls_before, 3u);
}

TEST_F(XLogClientTest, DataLandsInDeviceRing) {
  std::vector<uint8_t> data(300);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  x_pwrite(sim_, node_.client(), data.data(), data.size());
  x_fsync(sim_, node_.client());
  std::vector<uint8_t> ring(300);
  node_.device().cmb().CopyOut(0, ring.data(), ring.size());
  EXPECT_EQ(ring, data);
}

TEST_F(XLogClientTest, ReadTailStreamsSequentially) {
  std::vector<uint8_t> first(1000, 1), second(1000, 2);
  x_pwrite(sim_, node_.client(), first.data(), first.size());
  x_pwrite(sim_, node_.client(), second.data(), second.size());
  x_fsync(sim_, node_.client());

  std::vector<uint8_t> out(1000);
  ASSERT_EQ(x_pread(sim_, node_.client(), node_.driver(), out.data(), 1000),
            1000);
  EXPECT_EQ(out, first);
  ASSERT_EQ(x_pread(sim_, node_.client(), node_.driver(), out.data(), 1000),
            1000);
  EXPECT_EQ(out, second);
  EXPECT_EQ(node_.client().read_cursor(), 2000u);
}

TEST_F(XLogClientTest, ReadTailBlocksUntilDataIsDestaged) {
  // Start the read before any append: it must complete only after data
  // flows through the whole pipe.
  std::vector<uint8_t> out(100);
  bool read_done = false;
  node_.client().ReadTail(&node_.driver(), 100,
                          [&](Status s, std::vector<uint8_t> data) {
                            ASSERT_TRUE(s.ok());
                            out = std::move(data);
                            read_done = true;
                          });
  sim_.RunFor(sim::Ms(2));
  EXPECT_FALSE(read_done);

  std::vector<uint8_t> data(100, 0x66);
  node_.client().Append(data.data(), data.size(), [](Status) {});
  sim_.RunWhile([&]() { return read_done; });
  EXPECT_TRUE(read_done);
  EXPECT_EQ(out, data);
}

TEST_F(XLogClientTest, XAllocReservesDisjointAreas) {
  Result<uint64_t> a = node_.client().XAlloc(1024);
  Result<uint64_t> b = node_.client().XAlloc(2048);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1024u);
  EXPECT_EQ(node_.client().written(), 3072u);
}

TEST_F(XLogClientTest, XAllocRejectsBadSizes) {
  EXPECT_FALSE(node_.client().XAlloc(0).ok());
  EXPECT_FALSE(
      node_.client().XAlloc(node_.client().queue_bytes() + 1).ok());
}

TEST_F(XLogClientTest, WriteAtValidatesArea) {
  Result<uint64_t> area = node_.client().XAlloc(1024);
  ASSERT_TRUE(area.ok());
  uint8_t byte = 1;
  SyncRunner runner(&sim_);
  // Inside: OK.
  EXPECT_TRUE(runner
                  .Await([&](std::function<void(Status)> done) {
                    node_.client().WriteAt(*area + 100, &byte, 1,
                                           std::move(done));
                  })
                  .ok());
  // Past the end: rejected.
  EXPECT_FALSE(runner
                   .Await([&](std::function<void(Status)> done) {
                     node_.client().WriteAt(*area + 1024, &byte, 1,
                                            std::move(done));
                   })
                   .ok());
}

TEST_F(XLogClientTest, XFreeLifecycleAndBarrier) {
  Result<uint64_t> a = node_.client().XAlloc(512);
  Result<uint64_t> b = node_.client().XAlloc(512);
  sim_.Run();
  // Active allocation at 0 holds the destage barrier at 0.
  EXPECT_EQ(node_.device().destage().barrier(), 0u);

  EXPECT_TRUE(node_.client().XFree(*a).ok());
  sim_.Run();
  EXPECT_EQ(node_.device().destage().barrier(), 512u);

  EXPECT_TRUE(node_.client().XFree(*b).ok());
  sim_.Run();
  EXPECT_EQ(node_.device().destage().barrier(), ~0ull);

  EXPECT_TRUE(node_.client().XFree(*a).IsNotFound());  // already gone
  EXPECT_TRUE(node_.client().XFree(9999).IsNotFound());
}

TEST_F(XLogClientTest, ParallelAreaFillsCoalesceIntoCredit) {
  // Two areas filled in reverse order: credit only advances when the
  // earlier area's bytes arrive.
  Result<uint64_t> a = node_.client().XAlloc(256);
  Result<uint64_t> b = node_.client().XAlloc(256);
  std::vector<uint8_t> fill_b(256, 2);
  SyncRunner runner(&sim_);
  ASSERT_TRUE(runner
                  .Await([&](std::function<void(Status)> done) {
                    node_.client().WriteAt(*b, fill_b.data(), 256,
                                           std::move(done));
                  })
                  .ok());
  sim_.RunFor(sim::Us(50));
  EXPECT_EQ(node_.device().cmb().local_credit(), 0u);  // gap at [0,256)

  std::vector<uint8_t> fill_a(256, 1);
  ASSERT_TRUE(runner
                  .Await([&](std::function<void(Status)> done) {
                    node_.client().WriteAt(*a, fill_a.data(), 256,
                                           std::move(done));
                  })
                  .ok());
  sim_.RunFor(sim::Us(50));
  EXPECT_EQ(node_.device().cmb().local_credit(), 512u);
}

TEST_F(XLogClientTest, SyncAfterAllocWaitsForFills) {
  Result<uint64_t> area = node_.client().XAlloc(128);
  ASSERT_TRUE(area.ok());
  bool synced = false;
  node_.client().Sync([&](Status) { synced = true; });
  sim_.RunFor(sim::Ms(1));
  EXPECT_FALSE(synced);  // the area is reserved but unfilled
  std::vector<uint8_t> fill(128, 3);
  node_.client().WriteAt(*area, fill.data(), 128, [](Status) {});
  sim_.RunWhile([&]() { return synced; });
  EXPECT_TRUE(synced);
}

}  // namespace
}  // namespace xssd::host
