// Tail-read slot-reread backoff tests: a destage-ring slot that never
// shows the expected sequence (here: permanently overwritten by ring wrap)
// must be re-polled with bounded exponential backoff and fail with a typed
// DeadlineExceeded once the attempt limit is spent — not spin forever and
// not surface a raw parse error.

#include <gtest/gtest.h>

#include <vector>

#include "core/page_format.h"
#include "host/node.h"
#include "host/xcalls.h"

namespace xssd::host {
namespace {

core::VillarsConfig WrapConfig() {
  core::VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  // Tiny conventional-side ring: ten destage pages lap an 8-slot ring, so
  // slot 0 permanently holds a second-lap sequence.
  config.destage.ring_lba_count = 8;
  return config;
}

struct StuckSlotRun {
  sim::Simulator sim;
  StorageNode node;
  Status read_status = Status::OK();
  sim::SimTime started = 0;
  sim::SimTime failed_at = 0;

  explicit StuckSlotRun(XLogClientOptions options)
      : node(&sim, WrapConfig(), pcie::FabricConfig{}, "retry", options) {
    EXPECT_TRUE(node.Init().ok());
  }

  /// Lap the destage ring, then try to read the overwritten tail.
  void Run() {
    const uint64_t capacity = core::DestagePayloadCapacity(
        node.device().config().geometry.page_bytes);
    std::vector<uint8_t> wal(10 * capacity, 0xAB);
    ASSERT_EQ(x_pwrite(sim, node.client(), wal.data(), wal.size()),
              static_cast<ssize_t>(wal.size()));
    ASSERT_EQ(x_fsync(sim, node.client()), 0);
    sim.RunFor(sim::Ms(5));  // let destaging finish lapping the ring

    started = sim.Now();
    bool fired = false;
    node.client().ReadTail(&node.driver(), 100,
                           [&](Status status, std::vector<uint8_t>) {
                             read_status = status;
                             fired = true;
                           });
    sim.RunWhile([&]() { return fired; });
    ASSERT_TRUE(fired);
    failed_at = sim.Now();
  }
};

TEST(XLogClientRetry, StuckSlotFailsWithDeadlineAfterBoundedBackoff) {
  XLogClientOptions options;
  options.reread_attempt_limit = 5;
  options.reread_jitter = 0.0;  // exact backoff arithmetic below
  StuckSlotRun run(options);
  run.Run();

  EXPECT_TRUE(run.read_status.IsDeadlineExceeded())
      << run.read_status.ToString();
  EXPECT_EQ(run.node.client().read_deadline_failures(), 1u);
  EXPECT_EQ(run.node.client().slot_rereads(), 5u);
  // Exponential schedule 5+10+20+40+80 us of pure backoff (plus the reads
  // themselves): the client backed off instead of hammering the slot.
  EXPECT_GE(run.failed_at - run.started, sim::Us(155));
  // The cursor did not advance past data that never arrived.
  EXPECT_EQ(run.node.client().read_cursor(), 0u);
}

TEST(XLogClientRetry, BackoffCapBoundsTheSchedule) {
  // Same stuck slot, but the per-step cap keeps every delay at <= 10 us:
  // total virtual time to the deadline must come in well under the
  // uncapped schedule's.
  XLogClientOptions capped;
  capped.reread_attempt_limit = 5;
  capped.reread_jitter = 0.0;
  capped.reread_backoff_max = sim::Us(10);
  StuckSlotRun capped_run(capped);
  capped_run.Run();
  ASSERT_TRUE(capped_run.read_status.IsDeadlineExceeded());

  XLogClientOptions uncapped;
  uncapped.reread_attempt_limit = 5;
  uncapped.reread_jitter = 0.0;
  StuckSlotRun uncapped_run(uncapped);
  uncapped_run.Run();
  ASSERT_TRUE(uncapped_run.read_status.IsDeadlineExceeded());

  // Capped: 5+10+10+10+10 = 45 us of backoff vs 155 us uncapped.
  EXPECT_LT(capped_run.failed_at - capped_run.started,
            uncapped_run.failed_at - uncapped_run.started);
}

TEST(XLogClientRetry, SeededJitterIsDeterministic) {
  // Jitter de-synchronises concurrent readers but must never break run
  // reproducibility: two identical configurations replay byte-identically.
  XLogClientOptions options;
  options.reread_attempt_limit = 4;
  options.reread_jitter = 0.25;
  StuckSlotRun first(options);
  first.Run();
  StuckSlotRun second(options);
  second.Run();

  ASSERT_TRUE(first.read_status.IsDeadlineExceeded());
  ASSERT_TRUE(second.read_status.IsDeadlineExceeded());
  EXPECT_EQ(first.node.client().slot_rereads(),
            second.node.client().slot_rereads());
  EXPECT_EQ(first.failed_at - first.started,
            second.failed_at - second.started);
  // And jitter actually stretched the schedule past the jitterless floor.
  EXPECT_GT(first.failed_at - first.started, sim::Us(5 + 10 + 20 + 40));
}

}  // namespace
}  // namespace xssd::host
