// Edge-case tests for XLogClient's crash handling: the sync_stall_timeout
// escape hatch (fsync must fail Unavailable against a halted device, and
// must NOT false-positive against a live one) and Reconnect() after a
// graceful power-fail vs a hard crash. These are the client-side halves
// of the crash contract the conformance fuzzer exercises end to end.

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "host/node.h"
#include "host/xcalls.h"
#include "host/xlog_client.h"

namespace xssd::host {
namespace {

core::VillarsConfig SmallConfig() {
  core::VillarsConfig config;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.blocks_per_plane = 16;
  config.geometry.pages_per_block = 32;
  config.destage.ring_lba_count = 128;
  return config;
}

XLogClientOptions WithStallTimeout(sim::SimTime timeout) {
  XLogClientOptions options;
  options.sync_stall_timeout = timeout;
  return options;
}

class XLogClientEdgeTest : public ::testing::Test {
 protected:
  XLogClientEdgeTest()
      : node_(&sim_, SmallConfig(), pcie::FabricConfig{}, "edge",
              WithStallTimeout(sim::Ms(1))) {
    EXPECT_TRUE(node_.Init().ok());
  }

  sim::Simulator sim_;
  StorageNode node_;
};

TEST_F(XLogClientEdgeTest, SyncFailsUnavailableAgainstHaltedDevice) {
  // Halt the device first, then append: the bytes are stored but the
  // credit can never advance, so the sync stalls until the timeout path
  // reads the status register and sees kHalted.
  node_.device().CrashHard();
  std::vector<uint8_t> data(4096, 0xAB);
  Status append_status = Status::Internal("pending");
  node_.client().Append(data.data(), data.size(),
                        [&](Status s) { append_status = s; });
  Status sync_status = Status::Internal("pending");
  node_.client().Sync([&](Status s) { sync_status = s; });
  sim_.RunFor(sim::Ms(20));

  EXPECT_TRUE(append_status.ok());  // store posted; durability is sync's job
  EXPECT_EQ(sync_status.code(), StatusCode::kUnavailable)
      << sync_status.ToString();
  EXPECT_EQ(node_.client().sync_failures(), 1u);
}

TEST_F(XLogClientEdgeTest, SyncTimeoutWhileCrashClausePendingMidSync) {
  // The crash lands while the sync is already polling: same outcome, the
  // stall window expires against a halted device.
  std::vector<uint8_t> data(8192, 0x5C);
  ASSERT_EQ(x_pwrite(sim_, node_.client(), data.data(), data.size()),
            static_cast<ssize_t>(data.size()));
  ASSERT_EQ(x_fsync(sim_, node_.client()), 0);  // baseline: device is fine

  // More bytes, then halt before they can be credited.
  node_.client().Append(data.data(), data.size(), [](Status) {});
  node_.device().CrashHard();
  Status sync_status = Status::Internal("pending");
  node_.client().Sync([&](Status s) { sync_status = s; });
  sim_.RunFor(sim::Ms(20));

  EXPECT_EQ(sync_status.code(), StatusCode::kUnavailable)
      << sync_status.ToString();
}

TEST_F(XLogClientEdgeTest, SyncDoesNotFalselyFailOnLiveDevice) {
  // A short stall window against a live (merely busy) device must grant
  // another polling round, not report Unavailable: the status register
  // says alive, so the client keeps waiting and the sync completes.
  std::vector<uint8_t> data(64 * 1024, 0xE1);
  ASSERT_EQ(x_pwrite(sim_, node_.client(), data.data(), data.size()),
            static_cast<ssize_t>(data.size()));
  EXPECT_EQ(x_fsync(sim_, node_.client()), 0);
  EXPECT_EQ(node_.client().sync_failures(), 0u);
  EXPECT_GE(node_.device().cmb().local_credit(), data.size());
}

TEST_F(XLogClientEdgeTest, ReconnectAfterGracefulPowerFail) {
  std::vector<uint8_t> data(8192, 0x77);
  ASSERT_EQ(x_pwrite(sim_, node_.client(), data.data(), data.size()),
            static_cast<ssize_t>(data.size()));
  ASSERT_EQ(x_fsync(sim_, node_.client()), 0);

  bool drained = false;
  node_.device().PowerFail([&]() { drained = true; });
  sim_.RunFor(sim::Ms(50));
  ASSERT_TRUE(drained);  // supercap flush destaged the acknowledged bytes
  node_.device().Reboot();

  ASSERT_TRUE(node_.client().Reconnect().ok());
  EXPECT_EQ(node_.client().reconnects(), 1u);
  // Fresh epoch: the client restarts at the rebooted device's tail and
  // full service (append + fsync + tail read) works again.
  std::vector<uint8_t> fresh(512, 0x12);
  EXPECT_EQ(x_pwrite(sim_, node_.client(), fresh.data(), fresh.size()),
            static_cast<ssize_t>(fresh.size()));
  EXPECT_EQ(x_fsync(sim_, node_.client()), 0);
  EXPECT_EQ(node_.client().sync_failures(), 0u);
}

TEST_F(XLogClientEdgeTest, ReconnectAfterHardCrash) {
  std::vector<uint8_t> data(4096, 0x3D);
  ASSERT_EQ(x_pwrite(sim_, node_.client(), data.data(), data.size()),
            static_cast<ssize_t>(data.size()));

  node_.device().CrashHard();
  Status sync_status = Status::Internal("pending");
  node_.client().Sync([&](Status s) { sync_status = s; });
  sim_.RunFor(sim::Ms(20));
  ASSERT_EQ(sync_status.code(), StatusCode::kUnavailable);

  node_.device().Reboot();
  ASSERT_TRUE(node_.client().Reconnect().ok());
  // The failed sync stays on the books; service is restored regardless.
  EXPECT_EQ(node_.client().sync_failures(), 1u);
  std::vector<uint8_t> fresh(2048, 0x9A);
  EXPECT_EQ(x_pwrite(sim_, node_.client(), fresh.data(), fresh.size()),
            static_cast<ssize_t>(fresh.size()));
  EXPECT_EQ(x_fsync(sim_, node_.client()), 0);
}

TEST(XLogClientTypedErrors, StallOnLiveDeviceIsDeadlineExceeded) {
  // fail_on_stall turns "no progress but the device is alive" into a typed
  // DeadlineExceeded — the signal a failover workload uses to distinguish
  // a stuck log stream (wait or switch) from a dead device (Unavailable).
  // Here the stream is stuck because the eager secondary never receives the
  // mirror bytes: the primary's outbound NTB is down and retransmit is off.
  sim::Simulator sim;
  core::VillarsConfig config = SmallConfig();
  config.transport.retransmit_timeout = 0;
  XLogClientOptions options = WithStallTimeout(sim::Ms(1));
  options.fail_on_stall = true;
  StorageNode primary(&sim, config, pcie::FabricConfig{}, "pri", options);
  StorageNode secondary(&sim, config, pcie::FabricConfig{}, "sec");
  ASSERT_TRUE(primary.Init().ok());
  ASSERT_TRUE(secondary.Init().ok());
  ReplicationGroup group({&primary, &secondary});
  ASSERT_TRUE(
      group.Setup(core::ReplicationProtocol::kEager, sim::UsF(0.8)).ok());

  fault::FaultPlan plan =
      fault::FaultPlanBuilder("blackout")
          .Window(fault::FaultKind::kNtbLinkDown, sim::Ns(0), sim::Ms(100))
          .Build();
  fault::FaultInjector injector(&sim, plan, 3);
  primary.ntb().set_fault_injector(&injector);

  std::vector<uint8_t> data(4096, 0x6B);
  ASSERT_EQ(x_pwrite(sim, primary.client(), data.data(), data.size()),
            static_cast<ssize_t>(data.size()));
  Status sync_status = Status::Internal("pending");
  primary.client().Sync([&](Status s) { sync_status = s; });
  sim.RunFor(sim::Ms(20));

  EXPECT_TRUE(sync_status.IsDeadlineExceeded()) << sync_status.ToString();
  EXPECT_EQ(primary.client().sync_failures(), 1u);
  EXPECT_FALSE(primary.device().halted());
  // Local persistence kept going — only replication credit is stuck.
  EXPECT_GE(primary.device().cmb().local_credit(), data.size());
}

TEST_F(XLogClientEdgeTest, ReconnectWithoutEpochChangeKeepsCursors) {
  // A promotion-time Reconnect targets the same log in the same epoch: the
  // client must adopt the device tail without discarding its read cursor
  // or acked history, so tail consumption resumes where it left off.
  std::vector<uint8_t> data(8192, 0x2E);
  ASSERT_EQ(x_pwrite(sim_, node_.client(), data.data(), data.size()),
            static_cast<ssize_t>(data.size()));
  ASSERT_EQ(x_fsync(sim_, node_.client()), 0);
  std::vector<uint8_t> head(1024);
  ASSERT_EQ(x_pread(sim_, node_.client(), node_.driver(), head.data(),
                    head.size()),
            static_cast<ssize_t>(head.size()));

  uint64_t written_before = node_.client().written();
  ASSERT_TRUE(node_.client().Reconnect().ok());
  EXPECT_EQ(node_.client().reconnects(), 1u);
  EXPECT_EQ(node_.client().written(), written_before);

  // The next tail read continues from byte 1024 — no replay, no reset.
  std::vector<uint8_t> next(1024);
  ASSERT_EQ(x_pread(sim_, node_.client(), node_.driver(), next.data(),
                    next.size()),
            static_cast<ssize_t>(next.size()));
  EXPECT_EQ(next, std::vector<uint8_t>(1024, 0x2E));

  // A reboot bumps the epoch: the same call now resets the read path.
  node_.device().Reboot();
  ASSERT_TRUE(node_.client().Reconnect().ok());
  EXPECT_EQ(node_.client().reconnects(), 2u);
  EXPECT_EQ(node_.client().written(), 0u);
}

}  // namespace
}  // namespace xssd::host
